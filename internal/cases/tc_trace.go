package cases

import "threatraptor/internal/audit"

// The TRACE performer ran Linux with the largest traces in the paper's
// benchmark; tc_trace_1 demonstrates the execute-vs-start synthesis
// ambiguity that costs recall, and tc_trace_3/4 demonstrate re-purposed or
// undescribed behavior.

func tcTrace1() *Case {
	const report = `The attacker exploited a backdoor in the Firefox browser. The browser process /usr/lib/firefox/firefox downloaded the payload /home/admin/cache from 145.199.103.57. Then /home/admin/cache ran /home/admin/cache to elevate privileges. Finally, /home/admin/cache connected to 145.199.103.57 and received the attacker commands from 145.199.103.57.`

	firefox := audit.Proc{PID: 5101, Exe: "/usr/lib/firefox/firefox", User: "admin", Group: "admin"}
	cache := audit.Proc{PID: 5102, Exe: "/home/admin/cache", User: "admin", Group: "admin"}

	return &Case{
		ID:     "tc_trace_1",
		Name:   "20180410 1000 TRACE - Firefox Backdoor w/ Drakon In-Memory",
		Report: report,
		Entities: []string{
			"/usr/lib/firefox/firefox", "/home/admin/cache", "145.199.103.57",
		},
		Relations: []Relation{
			{"/usr/lib/firefox/firefox", "download", "/home/admin/cache"},
			{"/usr/lib/firefox/firefox", "download", "145.199.103.57"},
			{"/home/admin/cache", "run", "/home/admin/cache"},
			{"/home/admin/cache", "connect", "145.199.103.57"},
			{"/home/admin/cache", "receive", "145.199.103.57"},
		},
		BenignActions: 3000,
		Seed:          501,
		Attack: func(sim *audit.Simulator) {
			sim.Receive(firefox, "10.0.4.8", 43100, "145.199.103.57", 443, "tcp", 140_000)
			sim.WriteFile(firefox, "/home/admin/cache", 140_000)
			sim.Advance(2_000_000)
			sim.ExecuteFile(cache, "/home/admin/cache")
			// The "run" relation is correctly extracted, but the default
			// synthesis plan reads it as execute-file while the ground
			// truth is process creation: these start events are the
			// paper's 37 missed events (39/76 recall).
			for i := 0; i < 15; i++ {
				respawn := cache
				respawn.PID = 5110 + i
				sim.StartProcess(cache, respawn)
				sim.Advance(1_500_000)
			}
			for i := 0; i < 10; i++ {
				sim.Connect(cache, "10.0.4.8", 43110+i, "145.199.103.57", 443, "tcp")
				sim.Receive(cache, "10.0.4.8", 43110+i, "145.199.103.57", 443, "tcp", 1_000)
				sim.Advance(1_500_000)
			}
		},
	}
}

func tcTrace2() *Case {
	const report = `The user clicked a link in a phishing e-mail. The mail process /usr/bin/pine downloaded the malicious script /home/admin/mail.sh from 145.199.103.57. Then /home/admin/mail.sh read the address book /home/admin/addressbook and sent the harvested addresses to 145.199.103.57. The local loopback address 127.0.0.1 was not affected.`

	pine := audit.Proc{PID: 5201, Exe: "/usr/bin/pine", User: "admin", Group: "admin"}
	script := audit.Proc{PID: 5202, Exe: "/home/admin/mail.sh", User: "admin", Group: "admin"}

	return &Case{
		ID:     "tc_trace_2",
		Name:   "20180410 1200 TRACE - Phishing E-mail Link",
		Report: report,
		Entities: []string{
			"/usr/bin/pine", "/home/admin/mail.sh", "145.199.103.57",
			"/home/admin/addressbook",
		},
		Relations: []Relation{
			{"/usr/bin/pine", "download", "/home/admin/mail.sh"},
			{"/usr/bin/pine", "download", "145.199.103.57"},
			{"/home/admin/mail.sh", "read", "/home/admin/addressbook"},
			{"/home/admin/mail.sh", "send", "145.199.103.57"},
		},
		// The loopback mention is recognized by the regex rules but is not
		// an indicator of this attack.
		KnownEntityFPs: []string{"127.0.0.1"},
		BenignActions:  2000,
		Seed:           502,
		Attack: func(sim *audit.Simulator) {
			sim.Receive(pine, "10.0.4.8", 43200, "145.199.103.57", 443, "tcp", 9_000)
			sim.WriteFile(pine, "/home/admin/mail.sh", 9_000)
			sim.Advance(2_000_000)
			sim.ExecuteFile(script, "/home/admin/mail.sh")
			sim.ReadFile(script, "/home/admin/addressbook", 14_000)
			for i := 0; i < 4; i++ {
				sim.Send(script, "10.0.4.8", 43201, "145.199.103.57", 443, "tcp", 3_000)
				sim.Advance(1_500_000)
			}
		},
	}
}

func tcTrace3() *Case {
	// Re-purposed indicators (paper: 0/0 precision, 0/2 recall).
	const report = `The malicious extension process /home/admin/profile_updater wrote the dropper /var/tmp/memhelp.so there. Then /home/admin/profile_updater executed /var/tmp/memhelp.so.`

	actual := audit.Proc{PID: 5301, Exe: "/home/admin/profile_updtr", User: "admin", Group: "admin"}

	return &Case{
		ID:     "tc_trace_3",
		Name:   "20180412 1300 TRACE - Browser Extension w/ Drakon Dropper",
		Report: report,
		Entities: []string{
			"/home/admin/profile_updater", "/var/tmp/memhelp.so",
		},
		Relations: []Relation{
			{"/home/admin/profile_updater", "write", "/var/tmp/memhelp.so"},
			{"/home/admin/profile_updater", "execute", "/var/tmp/memhelp.so"},
		},
		BenignActions: 1000,
		Seed:          503,
		Attack: func(sim *audit.Simulator) {
			sim.WriteFile(actual, "/var/tmp/memhelper.so", 60_000)
			sim.ExecuteFile(actual, "/var/tmp/memhelper.so")
		},
	}
}

func tcTrace4() *Case {
	// Partially described behavior (paper: 1/1 precision, 1/3 recall).
	const report = `The attacker delivered the Pine backdoor through a crafted e-mail. The mail process /usr/bin/pine wrote the dropper executable /tmp/tcexec. Then /tmp/tcexec scanned the password file /etc/passwd.`

	pine := audit.Proc{PID: 5401, Exe: "/usr/bin/pine", User: "admin", Group: "admin"}
	tcexec := audit.Proc{PID: 5402, Exe: "/tmp/tcexec", User: "admin", Group: "admin"}

	return &Case{
		ID:     "tc_trace_4",
		Name:   "20180413 1200 TRACE - Pine Backdoor w/ Drakon Dropper",
		Report: report,
		Entities: []string{
			"/usr/bin/pine", "/tmp/tcexec", "/etc/passwd",
		},
		Relations: []Relation{
			{"/usr/bin/pine", "write", "/tmp/tcexec"},
			{"/tmp/tcexec", "scan", "/etc/passwd"},
		},
		BenignActions: 1500,
		Seed:          504,
		Attack: func(sim *audit.Simulator) {
			sim.WriteFile(pine, "/tmp/tcexec", 52_000)
			sim.Advance(2_000_000)
			// The dropper never touched /etc/passwd; instead it beaconed
			// out — behavior the report does not describe, so the query
			// misses these two events.
			sim.Connect(tcexec, "10.0.4.8", 43400, "145.199.103.57", 443, "tcp")
			sim.Advance(1_500_000)
			sim.Connect(tcexec, "10.0.4.8", 43401, "145.199.103.57", 443, "tcp")
		},
	}
}

func tcTrace5() *Case {
	const report = `The user opened the executable attachment of a phishing e-mail. The mail process /usr/bin/pine wrote the malicious executable /home/admin/mailer. Then /home/admin/mailer connected to 145.199.103.57 and sent the collected documents to 145.199.103.57.`

	pine := audit.Proc{PID: 5501, Exe: "/usr/bin/pine", User: "admin", Group: "admin"}
	mailer := audit.Proc{PID: 5502, Exe: "/home/admin/mailer", User: "admin", Group: "admin"}

	return &Case{
		ID:     "tc_trace_5",
		Name:   "20180413 1400 TRACE - Phishing E-mail w/ Executable Attachment",
		Report: report,
		Entities: []string{
			"/usr/bin/pine", "/home/admin/mailer", "145.199.103.57",
		},
		Relations: []Relation{
			{"/usr/bin/pine", "write", "/home/admin/mailer"},
			{"/home/admin/mailer", "connect", "145.199.103.57"},
			{"/home/admin/mailer", "send", "145.199.103.57"},
		},
		BenignActions: 2500,
		Seed:          505,
		Attack: func(sim *audit.Simulator) {
			sim.WriteFile(pine, "/home/admin/mailer", 48_000)
			sim.Advance(2_000_000)
			sim.ExecuteFile(mailer, "/home/admin/mailer")
			// Heavy exfiltration (the paper reports 578 TP).
			for i := 0; i < 130; i++ {
				sim.Connect(mailer, "10.0.4.8", 43500+i, "145.199.103.57", 443, "tcp")
				sim.Send(mailer, "10.0.4.8", 43500+i, "145.199.103.57", 443, "tcp", 6_000)
				sim.Advance(1_500_000)
			}
		},
	}
}
