package cases

import (
	"testing"

	"threatraptor/internal/audit"
	"threatraptor/internal/provenance"
)

// TestAttackSubgraphsConnected verifies a structural property real audit
// logs have and the fuzzy search mode depends on: within each case, the
// attack's entities form one weakly connected component of the provenance
// graph (process-creation and execve linkage tie the stages together).
// Cases whose reports deliberately diverge from the logs are exempt only
// where the divergence itself breaks the chain.
func TestAttackSubgraphsConnected(t *testing.T) {
	for _, c := range All() {
		c := c
		t.Run(c.ID, func(t *testing.T) {
			gen, err := c.Generate(0.1)
			if err != nil {
				t.Fatal(err)
			}
			prov := provenance.Build(gen.Log)

			// Collect the attack's entity IDs.
			attack := map[int64]bool{}
			for _, id := range gen.AttackEventIDs {
				for i := range gen.Log.Events {
					ev := &gen.Log.Events[i]
					if ev.ID == id {
						attack[ev.SubjectID] = true
						attack[ev.ObjectID] = true
					}
				}
			}
			if len(attack) == 0 {
				t.Fatal("no attack entities")
			}

			// BFS over attack-event edges only.
			adj := map[int64][]int64{}
			idSet := map[int64]bool{}
			for _, id := range gen.AttackEventIDs {
				idSet[id] = true
			}
			for i := range gen.Log.Events {
				ev := &gen.Log.Events[i]
				if !idSet[ev.ID] {
					continue
				}
				adj[ev.SubjectID] = append(adj[ev.SubjectID], ev.ObjectID)
				adj[ev.ObjectID] = append(adj[ev.ObjectID], ev.SubjectID)
			}
			var start int64
			for id := range attack {
				start = id
				break
			}
			seen := map[int64]bool{start: true}
			queue := []int64{start}
			for len(queue) > 0 {
				u := queue[0]
				queue = queue[1:]
				for _, v := range adj[u] {
					if !seen[v] {
						seen[v] = true
						queue = append(queue, v)
					}
				}
			}
			components := 1
			for id := range attack {
				if !seen[id] {
					components++
					// Restart from the unseen node to count components.
					seen[id] = true
					q2 := []int64{id}
					for len(q2) > 0 {
						u := q2[0]
						q2 = q2[1:]
						for _, v := range adj[u] {
							if !seen[v] {
								seen[v] = true
								q2 = append(q2, v)
							}
						}
					}
				}
			}
			// Some cases legitimately split: password_crack's stages are
			// bridged only by shell activity, data_leak's file-system scan
			// is narrative-only behavior apart from the exfil chain, and
			// tc_trace_4's dropper deliberately diverges from its report.
			maxComponents := 1
			switch c.ID {
			case "password_crack", "data_leak", "tc_trace_4":
				maxComponents = 2
			}
			if components > maxComponents {
				t.Errorf("attack subgraph has %d components (max %d)", components, maxComponents)
			}
			_ = prov
		})
	}
}

// TestAttackEventsSurviveReduction: every distinct attack step remains
// represented after data reduction at the default threshold.
func TestAttackEventsSurviveReduction(t *testing.T) {
	for _, c := range All() {
		rawLog, attackKeys, err := c.GenerateRaw(0.1)
		if err != nil {
			t.Fatalf("%s: %v", c.ID, err)
		}
		_ = rawLog
		gen, err := c.Generate(0.1)
		if err != nil {
			t.Fatalf("%s: %v", c.ID, err)
		}
		found := map[string]bool{}
		for _, id := range gen.AttackEventIDs {
			for i := range gen.Log.Events {
				ev := &gen.Log.Events[i]
				if ev.ID == id {
					found[eventKey(gen.Log, ev)] = true
				}
			}
		}
		for key := range attackKeys {
			if !found[key] {
				t.Errorf("%s: attack step %q lost in reduction", c.ID, key)
			}
		}
	}
}

// TestBenignNoiseDoesNotCollide: no benign process shares an executable
// with a report-IOC'd process — the paper's perfect-precision claim rests
// on the synthesized patterns' IOC constraints never matching benign
// activity.
func TestBenignNoiseDoesNotCollide(t *testing.T) {
	for _, c := range All() {
		gen, err := c.Generate(0.2)
		if err != nil {
			t.Fatal(err)
		}
		// Processes touched by attack events (as subject or object).
		attackEnt := map[int64]bool{}
		for _, id := range gen.AttackEventIDs {
			for i := range gen.Log.Events {
				ev := &gen.Log.Events[i]
				if ev.ID == id {
					attackEnt[ev.SubjectID] = true
					attackEnt[ev.ObjectID] = true
				}
			}
		}
		iocExe := map[string]bool{}
		for _, e := range c.Entities {
			iocExe[e] = true
		}
		for _, e := range gen.Log.Entities.All() {
			if e.Kind != audit.EntityProcess || attackEnt[e.ID] {
				continue
			}
			if iocExe[e.Proc.ExeName] {
				t.Errorf("%s: benign process %v matches a report IOC", c.ID, e)
			}
		}
	}
}
