package shard

import (
	"fmt"
	"reflect"
	"testing"

	"threatraptor/internal/audit"
	"threatraptor/internal/engine"
	"threatraptor/internal/tbql"
)

// fleetLog builds the scan-throughput workload: a 4-host fleet of worker
// processes with mult×2500 actions of dense historical activity, a quiet
// ten-second gap, and a small burst of recent activity. A trailing-window
// hunt over this store is probe-bound — the worker anchor matches events
// across the whole dense history, so the single store's subject-index
// probes walk every historical event and discard the out-of-window ones,
// while time partitions confine the routed probe to the newest slices.
func fleetLog(tb testing.TB, mult int) *audit.Log {
	tb.Helper()
	sim := audit.NewSimulator(7, 1_700_000_000_000_000)
	var procs []audit.Proc
	for h := 0; h < 4; h++ {
		for w := 0; w < 2; w++ {
			procs = append(procs, audit.Proc{
				PID: 3000 + h*10 + w, Exe: fmt.Sprintf("/usr/bin/worker%d", w),
				User: "svc", Group: "svc", Host: fmt.Sprintf("host-%d", h),
			})
		}
	}
	emit := func(i int) {
		p := procs[i%len(procs)]
		if i%20 == 19 {
			sim.WriteFile(p, "/var/log/worker.log", 100)
		} else {
			sim.ReadFile(p, fmt.Sprintf("/srv/%s/data%d.bin", p.Host, i%4), 100)
		}
		sim.Advance(1500)
	}
	for i := 0; i < mult*2500; i++ {
		emit(i)
	}
	sim.Advance(10_000_000)
	for i := 0; i < 40; i++ {
		emit(i)
	}
	log, err := audit.ParseRecords(sim.Records())
	if err != nil {
		tb.Fatal(err)
	}
	return log
}

// fleetWindowTBQL hunts read-then-log-write chains in the trailing
// window.
func fleetWindowTBQL(winSec int64) string {
	return fmt.Sprintf(`last %d second
proc p["%%worker%%"] read file f1 as evt1
proc p write file f2["%%worker.log%%"] as evt2
with evt1 before evt2
return distinct p, f1, f2`, winSec)
}

// fleetSlice picks the ByTime slice width: an eighth of the store's span,
// nudged down until the trailing window sits inside the newest absolute
// slice (slices cut at multiples of the width, so the newest boundary
// must fall at least winUS before the store max).
func fleetSlice(ref *engine.Store, winUS int64) int64 {
	sliceUS := (ref.MaxTime-ref.MinTime)/8 + 1
	for ref.MaxTime%sliceUS < winUS {
		sliceUS -= winUS / 2
	}
	return sliceUS
}

// BenchmarkShardedHunt measures the trailing-window fleet hunt on the 8×
// preload store: the single-store path vs the scatter-gather path at
// 1/2/4 ByTime shards. The window routes to the partition holding the
// newest slice, which also holds only every n-th historical slice — so
// the hunt's probe volume drops with shard count (the routing-prune
// speedup; concurrent per-shard scans add on top when cores are spare).
// Every configuration is pinned to the unsharded row set before timing.
func BenchmarkShardedHunt(b *testing.B) {
	log := fleetLog(b, 8)
	ref, err := engine.NewStore(log)
	if err != nil {
		b.Fatal(err)
	}
	const winUS = 1_000_000
	sliceUS := fleetSlice(ref, winUS)
	q, err := tbql.Parse(fleetWindowTBQL(winUS / 1_000_000))
	if err != nil {
		b.Fatal(err)
	}
	a, err := tbql.Analyze(q)
	if err != nil {
		b.Fatal(err)
	}
	refEn := &engine.Engine{Store: ref}
	res, _, err := refEn.Execute(nil, a)
	if err != nil {
		b.Fatal(err)
	}
	if len(res.Set.Rows) == 0 {
		b.Fatal("fleet hunt matched nothing; the benchmark is vacuous")
	}
	want := sortedRows(res.Set.Strings())

	b.Run("unsharded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := refEn.Execute(nil, a); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards%d", n), func(b *testing.B) {
			sh, err := New(log, n, ByTime(sliceUS))
			if err != nil {
				b.Fatal(err)
			}
			sres, _, err := sh.Execute(nil, a)
			if err != nil {
				b.Fatal(err)
			}
			if got := sortedRows(sres.Set.Strings()); !reflect.DeepEqual(got, want) {
				b.Fatalf("sharded rows differ from unsharded:\ngot  %v\nwant %v", got, want)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := sh.Execute(nil, a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
