package shard

import (
	"bytes"
	"reflect"
	"sort"
	"strings"
	"testing"

	"threatraptor/internal/audit"
	"threatraptor/internal/cases"
	"threatraptor/internal/engine"
	"threatraptor/internal/rules"
	"threatraptor/internal/stream"
	"threatraptor/internal/tactical"
)

const dataLeakTBQL = `proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1
proc p1 write file f2["%/tmp/upload.tar%"] as evt2
proc p2["%/bin/bzip2%"] read file f2 as evt3
proc p2 write file f3["%/tmp/upload.tar.bz2%"] as evt4
proc p3["%/usr/bin/gpg%"] read file f3 as evt5
proc p3 write file f4["%/tmp/upload%"] as evt6
proc p4["%/usr/bin/curl%"] read file f4 as evt7
proc p4 connect ip i1["192.168.29.128"] as evt8
with evt1 before evt2, evt2 before evt3, evt3 before evt4, evt4 before evt5, evt5 before evt6, evt6 before evt7, evt7 before evt8
return distinct p1, f1, f2, p2, f3, p3, f4, p4, i1`

const graphTBQL = `proc p1["%/bin/tar%"] ->[read] file f1["%/etc/passwd%"] as evt1
proc p1 ->[write] file f2["%/tmp/upload.tar%"] as evt2
with evt1 before evt2
return distinct p1, f1, f2`

const varlenTBQL = `proc p1["%/bin/tar%"] ~>(1~8)[connect] ip i1["192.168.29.128"]
return distinct p1, i1`

// dataLeakRecords regenerates the data_leak case's raw record stream (the
// simulator run cases.GenerateRaw performs), scaled down.
func dataLeakRecords(t testing.TB, scale float64) []audit.Record {
	t.Helper()
	c := cases.ByID("data_leak")
	if c == nil {
		t.Fatal("data_leak case missing")
	}
	records, _, _ := c.Simulate(scale)
	return records
}

func twinRules(t testing.TB) *rules.Set {
	t.Helper()
	set, err := rules.Compile([]rules.Rule{
		{Name: "credential-file-read", Tactic: "credential-access", Severity: 8,
			Ops: []string{"read"}, Where: map[string]string{"object.kind": "file", "object.name": "/etc/*"}},
		{Name: "staging-write-tmp", Tactic: "collection",
			Ops: []string{"write"}, Where: map[string]string{"object.kind": "file", "object.name": "/tmp/*"}},
		{Name: "outbound-connect", Tactic: "command-and-control",
			Ops: []string{"connect"}, Where: map[string]string{"object.kind": "ip"}},
		{Name: "outbound-send", Tactic: "exfiltration", Severity: 7,
			Ops: []string{"send"}, Where: map[string]string{"object.kind": "ip"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func drainMatches(sub *stream.Subscription) []string {
	var out []string
	for {
		select {
		case m, ok := <-sub.C:
			if !ok {
				return out
			}
			var parts []string
			for _, v := range m.Row {
				parts = append(parts, v.String())
			}
			out = append(out, strings.Join(parts, "|"))
		default:
			return out
		}
	}
}

// TestShardedStreamEquivalence drives twin live sessions — one over the
// classic single store, one over each sharded backend configuration —
// through identical chunked ingest with identical standing queries and
// rule sets, and requires indistinguishable outcomes: the same sealed
// event log, the same hunt rows, the same firing sets, and byte-identical
// ranked-incident JSON.
func TestShardedStreamEquivalence(t *testing.T) {
	recs := dataLeakRecords(t, 0.25)
	queries := []string{dataLeakTBQL, graphTBQL, varlenTBQL}
	newCfg := func() stream.Config {
		return stream.Config{MatchBuffer: 8192, Tactical: tactical.Config{Rules: twinRules(t)}}
	}

	type lane struct {
		name string
		sess *stream.Session
		subs []*stream.Subscription
	}
	build := func(name string, sess *stream.Session) *lane {
		l := &lane{name: name, sess: sess}
		for _, q := range queries {
			sub, err := sess.Watch(q)
			if err != nil {
				t.Fatal(err)
			}
			l.subs = append(l.subs, sub)
		}
		return l
	}

	store, err := engine.NewStore(audit.NewLog())
	if err != nil {
		t.Fatal(err)
	}
	lanes := []*lane{build("classic", stream.New(store, &engine.Engine{Store: store}, newCfg()))}
	for _, cfg := range []struct {
		name string
		n    int
		part Partitioner
	}{
		{"4xhost", 4, ByHost()},
		{"3xhash", 3, ByHash()},
		{"2xtime", 2, ByTime(2_000_000)},
	} {
		sh, err := New(audit.NewLog(), cfg.n, cfg.part)
		if err != nil {
			t.Fatal(err)
		}
		lanes = append(lanes, build(cfg.name, stream.NewWithBackend(sh, newCfg())))
	}

	const chunk = 512
	for lo := 0; lo < len(recs); lo += chunk {
		hi := lo + chunk
		if hi > len(recs) {
			hi = len(recs)
		}
		for _, l := range lanes {
			if _, err := l.sess.IngestRecords(recs[lo:hi]); err != nil {
				t.Fatalf("%s ingest: %v", l.name, err)
			}
		}
	}
	for _, l := range lanes {
		if _, err := l.sess.Flush(); err != nil {
			t.Fatalf("%s flush: %v", l.name, err)
		}
	}

	ref := lanes[0]
	refIncs, err := tactical.MarshalIncidents(ref.sess.Incidents())
	if err != nil {
		t.Fatal(err)
	}
	if ref.sess.TacticalStats().AlertsTagged == 0 {
		t.Fatal("reference session tagged no alerts; incident comparison would be vacuous")
	}
	refFired := make([][]string, len(queries))
	for i, sub := range ref.subs {
		refFired[i] = drainMatches(sub)
		sort.Strings(refFired[i])
		if sub.Dropped() != 0 {
			t.Fatalf("reference dropped %d matches; raise MatchBuffer", sub.Dropped())
		}
	}

	for _, l := range lanes[1:] {
		// Identical sealed stores: the watermarked reduction and global ID
		// assignment are backend-independent.
		if !reflect.DeepEqual(ref.sess.Store().Log.Events, l.sess.Store().Log.Events) {
			t.Fatalf("%s sealed event log diverged (%d vs %d events)", l.name,
				len(l.sess.Store().Log.Events), len(ref.sess.Store().Log.Events))
		}
		// Identical hunts through the session surface (the sharded lane's
		// hunts scatter-gather; compare canonically sorted).
		for _, q := range queries {
			want, _, err := ref.sess.Hunt(nil, q)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := l.sess.Hunt(nil, q)
			if err != nil {
				t.Fatalf("%s hunt: %v", l.name, err)
			}
			if !reflect.DeepEqual(sortedRows(got.Set.Strings()), sortedRows(want.Set.Strings())) {
				t.Errorf("%s hunt %q diverged", l.name, q)
			}
		}
		// Identical standing-query firing sets (order is batch-arrival
		// dependent; matches are deduplicated).
		for i, sub := range l.subs {
			if err := sub.Err(); err != nil {
				t.Fatalf("%s subscription %d: %v", l.name, i, err)
			}
			if sub.Dropped() != 0 {
				t.Fatalf("%s dropped %d matches; raise MatchBuffer", l.name, sub.Dropped())
			}
			fired := drainMatches(sub)
			sort.Strings(fired)
			if !reflect.DeepEqual(fired, refFired[i]) {
				t.Errorf("%s firings for %q diverged:\ngot  %v\nwant %v",
					l.name, queries[i], fired, refFired[i])
			}
		}
		// Byte-identical ranked-incident JSON: the tactical layer reads the
		// sharded store's global snapshot, which equals the classic store's.
		incs, err := tactical.MarshalIncidents(l.sess.Incidents())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(incs, refIncs) {
			t.Errorf("%s incident JSON diverged from classic session", l.name)
		}
	}
}
