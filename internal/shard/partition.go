// Package shard partitions the live store by host, time, or hash and
// executes hunts scatter-gather: one authoritative global store (the
// correctness anchor — it serves variable-length path traversals, the
// tactical layer, and provenance/fuzzy reads, and its snapshot defines
// the system's published state) plus N partition stores that each hold a
// routed subset of the events over the shared entity table.
//
// Event IDs are GLOBAL everywhere: the coordinator lets the global store
// assign them and fans the finalized events out, so binding sets, delta
// floors, and the op-bitmap index work across partitions with no
// remapping. Entities fan out to every partition (cross-shard patterns
// join on shared entity identity — a network connection's 5-tuple interns
// to one entity that both the connecting and the accepting host's events
// reference), while each event's row and graph edge live in exactly one
// partition.
//
// A hunt keeps the whole scheduled plan at the coordinator — pruning-score
// order, binding-set feed, final join — and scatters only the per-pattern
// data queries, routing each to the partitions its window, op mask, and
// host pins can possibly touch (engine.QueryMeta) and merging the gathered
// rows in global event-ID order, so the result is deterministic across
// shard counts and partitioners.
package shard

import (
	"fmt"
	"hash/fnv"
	"strings"
	"time"

	"threatraptor/internal/audit"
)

// Partitioner routes one event to a partition. Routing must be a pure
// function of the event and its subject entity so a rebuilt store routes
// identically.
type Partitioner interface {
	// Name identifies the partitioner ("hash", "host", "time:1h", ...).
	Name() string
	// Route returns the partition index in [0, n) for an event; subj is
	// the event's subject entity (always a process).
	Route(ev *audit.Event, subj *audit.Entity, n int) int
}

// HostRouter is implemented by partitioners that place every event of one
// host in one known partition; the scatter router uses it to send a
// pattern pinned by a `host = "..."` equality to that partition alone.
type HostRouter interface {
	HostShard(host string, n int) int
}

// ByHash spreads events uniformly by event ID — the load-balancing
// default with no routing affinity.
func ByHash() Partitioner { return hashPart{} }

type hashPart struct{}

func (hashPart) Name() string { return "hash" }
func (hashPart) Route(ev *audit.Event, _ *audit.Entity, n int) int {
	return int(uint64(ev.ID) % uint64(n))
}

// ByHost routes by the subject entity's host, so every event a host's
// processes perform lands in that host's partition and host-pinned
// patterns scatter to exactly one shard. Host-less subjects (single-host
// logs) all route together.
func ByHost() Partitioner { return hostPart{} }

type hostPart struct{}

func (hostPart) Name() string { return "host" }
func (hostPart) Route(ev *audit.Event, subj *audit.Entity, n int) int {
	host := ""
	if subj != nil {
		host = subj.Host()
	}
	return hostPart{}.HostShard(host, n)
}

// HostShard returns the partition a host's events route to.
func (hostPart) HostShard(host string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(host))
	return int(h.Sum32() % uint32(n))
}

// ByTime routes by event start-time slice: slice k (StartTime / sliceUS)
// goes to partition k mod n, so a time-windowed pattern touches only the
// partitions its resolved window overlaps.
func ByTime(sliceUS int64) Partitioner {
	if sliceUS <= 0 {
		sliceUS = int64(time.Hour / time.Microsecond)
	}
	return timePart{sliceUS: sliceUS}
}

type timePart struct{ sliceUS int64 }

func (p timePart) Name() string {
	return "time:" + time.Duration(p.sliceUS*int64(time.Microsecond)).String()
}
func (p timePart) Route(ev *audit.Event, _ *audit.Entity, n int) int {
	slice := ev.StartTime / p.sliceUS
	return int(uint64(slice) % uint64(n))
}

// ParsePartitioner parses a CLI partitioner spec: "hash", "host", "time"
// (1 h slices), or "time:<duration>" (e.g. "time:10m").
func ParsePartitioner(spec string) (Partitioner, error) {
	switch {
	case spec == "" || spec == "hash":
		return ByHash(), nil
	case spec == "host":
		return ByHost(), nil
	case spec == "time":
		return ByTime(0), nil
	case strings.HasPrefix(spec, "time:"):
		d, err := time.ParseDuration(spec[len("time:"):])
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("shard: bad time partitioner slice %q", spec)
		}
		return ByTime(int64(d / time.Microsecond)), nil
	}
	return nil, fmt.Errorf("shard: unknown partitioner %q (want hash, host, time, or time:<duration>)", spec)
}
