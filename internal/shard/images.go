package shard

// Segment dump and restore for the sharded store. The fleet persists as
// one segment generation: the global store's image (with the entity
// table) plus one per-partition image (events and adjacency only —
// partitions share the global entities). Restore rebuilds each store by
// direct arena restoration over the shared entity slab, so a recovered
// coordinator is indistinguishable from one built by New over the same
// input.

import (
	"fmt"
	"sync/atomic"

	"threatraptor/internal/audit"
	"threatraptor/internal/engine"
	"threatraptor/internal/segment"
)

// DumpImages flattens the whole fleet: the global store under role
// "global" (with entities), then every partition under "p0".."pN-1"
// (without — they share the global image's entity slab). Writer-side
// only (the stream session calls it under its write lock, serialized
// against AppendBatch).
func (s *Store) DumpImages() []segment.RoleImage {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]segment.RoleImage, 0, 1+len(s.shards))
	out = append(out, segment.RoleImage{Role: segment.RoleGlobal, Image: engine.DumpImage(s.global, true)})
	for i, p := range s.shards {
		out = append(out, segment.RoleImage{Role: segment.PartitionRole(i), Image: engine.DumpImage(p.store, false)})
	}
	return out
}

// Topology names the sharding layout for the manifest.
func (s *Store) Topology() segment.Topology {
	return segment.Topology{Shards: len(s.shards), PartitionBy: s.part.Name()}
}

// OpenImages rebuilds a sharded store from one recovered segment
// generation: the "global" image supplies the entity slab and the
// authoritative store, and each "p<i>" image restores its partition over
// the same shared entity table. part must match the partitioner the
// generation was dumped under (the manifest records its name); shards is
// the expected partition count.
func OpenImages(imgs []segment.RoleImage, shards int, part Partitioner) (*Store, error) {
	if shards < 1 {
		shards = 1
	}
	if part == nil {
		part = ByHash()
	}
	byRole := make(map[string]*segment.Image, len(imgs))
	for _, ri := range imgs {
		byRole[ri.Role] = ri.Image
	}
	gimg := byRole[segment.RoleGlobal]
	if gimg == nil {
		return nil, fmt.Errorf("shard: segment generation has no %q image", segment.RoleGlobal)
	}
	if len(byRole) != shards+1 {
		return nil, fmt.Errorf("shard: segment generation holds %d images, topology wants %d partitions + global", len(imgs), shards)
	}
	table := audit.RestoreTable(gimg.Entities)
	global, err := engine.OpenStore(gimg, gimg.EntityCols, gimg.Entities, table)
	if err != nil {
		return nil, err
	}
	s := &Store{
		part:         part,
		global:       global,
		globalEngine: &engine.Engine{Store: global, ViewHighWater: -1},
		shards:       make([]*partition, shards),
	}
	for i := 0; i < shards; i++ {
		pimg := byRole[segment.PartitionRole(i)]
		if pimg == nil {
			return nil, fmt.Errorf("shard: segment generation is missing partition %q", segment.PartitionRole(i))
		}
		st, err := engine.OpenStore(pimg, gimg.EntityCols, gimg.Entities, table)
		if err != nil {
			return nil, fmt.Errorf("shard: partition %d: %w", i, err)
		}
		s.shards[i] = &partition{
			store: st,
			// Same engine policy New uses: partition engines never
			// materialize standing-query views.
			engine: &engine.Engine{Store: st, ViewHighWater: -1},
			opMask: maskOf(st.Log.Events),
		}
	}
	s.fanout = make([]atomic.Int64, shards+1)
	s.publishLocked()
	return s, nil
}
