package shard

import (
	"reflect"
	"testing"

	"threatraptor/internal/cases"
	"threatraptor/internal/engine"
	"threatraptor/internal/tbql"
)

// lateralTBQL hunts the lateral_movement extra case across the fleet: the
// ssh connect happens on host-a, the sshd receive and the scp exfil on
// host-b, and the two halves of the pivot meet at the shared NetConn
// entity (5-tuple identity is host-agnostic). Under ByHost partitioning
// evt1 and evt2/evt3 live in different shards, so the temporal join is a
// genuine cross-shard join through the global entity table.
const lateralTBQL = `proc p1["%/usr/bin/ssh%"] connect ip i1["10.0.0.12"] as evt1
proc p2["%/usr/sbin/sshd%"] receive ip i1 as evt2
proc p3["%/usr/bin/scp%"] connect ip i2["203.0.113.50"] as evt3
with evt1 before evt2, evt2 before evt3
return distinct p1, i1, p2, p3, i2`

func TestShardedLateralMovement(t *testing.T) {
	c := cases.ByID("lateral_movement")
	if c == nil {
		t.Fatal("lateral_movement case missing (cases.Extras)")
	}
	gen, err := c.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	q, err := tbql.Parse(lateralTBQL)
	if err != nil {
		t.Fatal(err)
	}
	a, err := tbql.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}

	ref, err := engine.NewStore(gen.Log)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := (&engine.Engine{Store: ref}).Execute(nil, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set.Rows) == 0 {
		t.Fatal("unsharded hunt found no lateral-movement chain")
	}
	want := sortedRows(res.Set.Strings())

	for _, n := range []int{2, 4} {
		// The two fleet hosts must route to different partitions for the
		// test to exercise a cross-shard join at all.
		hp := hostPart{}
		if hp.HostShard("host-a", n) == hp.HostShard("host-b", n) {
			t.Fatalf("n=%d: host-a and host-b collide; pick another shard count", n)
		}
		sh, err := New(gen.Log, n, ByHost())
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		populated := 0
		for _, m := range sh.Metrics() {
			if m.Events > 0 {
				populated++
			}
		}
		if populated < 2 {
			t.Fatalf("n=%d: events landed in %d partitions, want >=2", n, populated)
		}
		sres, _, err := sh.Execute(nil, a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got := sortedRows(sres.Set.Strings()); !reflect.DeepEqual(got, want) {
			t.Errorf("n=%d rows differ from unsharded:\ngot  %v\nwant %v", n, got, want)
		}
		if !sameEventSet(sres.MatchedEvents, res.MatchedEvents) {
			t.Errorf("n=%d matched %d events, unsharded %d",
				n, len(sres.MatchedEvents), len(res.MatchedEvents))
		}
	}
}
