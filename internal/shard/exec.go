package shard

// Scatter-gather execution. A hunt keeps the single-store scheduled plan
// at the coordinator — the pruning-score pattern order, the binding-set
// feed between patterns, and the final cross-pattern join — and scatters
// only the per-pattern data queries: each pattern runs concurrently
// against the pinned snapshots of exactly the partitions its window, op
// mask, and host pins can touch, and the gathered rows merge in global
// event-ID order before feeding the next pattern's bindings. The merged
// order is a pure function of the data, so results are identical across
// shard counts and partitioners.

import (
	"context"
	"sort"
	"sync"

	"threatraptor/internal/engine"
	"threatraptor/internal/relational"
	"threatraptor/internal/tbql"
)

// maxCachedAnalyzed bounds the Hunt source cache (flushed wholesale on
// overflow, the idiom every engine cache uses).
const maxCachedAnalyzed = 256

// analyzedEntry caches one query's compiled form plus the coordinator's
// routing metadata: the scheduled pattern order and each pattern's
// routing-relevant shape.
type analyzedEntry struct {
	a     *tbql.Analyzed
	order []int
	metas []engine.PatternMeta
}

// Analyzed returns the cached parse+analyze (and routing metadata) for a
// TBQL source.
func (s *Store) Analyzed(src string) (*tbql.Analyzed, error) {
	e, err := s.entryFor(src)
	if err != nil {
		return nil, err
	}
	return e.a, nil
}

func (s *Store) entryFor(src string) (*analyzedEntry, error) {
	s.huntMu.Lock()
	if e, ok := s.analyzed[src]; ok {
		s.huntMu.Unlock()
		return e, nil
	}
	s.huntMu.Unlock()

	q, err := tbql.Parse(src)
	if err != nil {
		return nil, err
	}
	a, err := tbql.Analyze(q)
	if err != nil {
		return nil, err
	}
	e := &analyzedEntry{a: a, order: engine.ScheduleOrder(a), metas: engine.QueryMeta(a)}

	s.huntMu.Lock()
	if len(s.analyzed) >= maxCachedAnalyzed {
		s.analyzed = nil
	}
	if s.analyzed == nil {
		s.analyzed = make(map[string]*analyzedEntry)
	}
	s.analyzed[src] = e
	s.huntMu.Unlock()
	return e, nil
}

// entryOf returns routing metadata for an externally analyzed query
// (Watch hands the session pre-analyzed queries); derived fresh — the
// schedule and metadata derivations are cheap next to a data query.
func entryOf(a *tbql.Analyzed) *analyzedEntry {
	return &analyzedEntry{a: a, order: engine.ScheduleOrder(a), metas: engine.QueryMeta(a)}
}

// Hunt parses, analyzes, and executes TBQL source scatter-gather against
// the latest published View.
func (s *Store) Hunt(ctx context.Context, src string) (*engine.Result, engine.Stats, error) {
	e, err := s.entryFor(src)
	if err != nil {
		return nil, engine.Stats{}, err
	}
	return s.execute(ctx, e, s.View(), nil)
}

// Execute runs an analyzed query scatter-gather against the latest
// published View. Results equal the unsharded engine's on the same data
// (row order may differ; scattered rows merge in event-ID order).
func (s *Store) Execute(ctx context.Context, a *tbql.Analyzed) (*engine.Result, engine.Stats, error) {
	return s.execute(ctx, entryOf(a), s.View(), nil)
}

// ExecuteDelta evaluates a query incrementally after an append: complete
// bindings using at least one event with ID >= minEventID. Every pattern
// takes a turn as the delta pattern (the recompute delta-join rule); the
// delta pattern's scatter is pruned to partitions whose event-ID frontier
// passed the floor, so a small batch routed to one partition costs one
// shard-local probe plus whatever its bindings no longer prune away.
// Variable-length-path queries fall back to one full execution, exactly
// like the unsharded engine.
func (s *Store) ExecuteDelta(ctx context.Context, a *tbql.Analyzed, minEventID int64) (*engine.Result, engine.Stats, error) {
	e := entryOf(a)
	v := s.View()
	if engine.HasVarLenPath(a) {
		return s.execute(ctx, e, v, nil)
	}
	combined := engine.EmptyResult(a)
	var total engine.Stats
	for i := range a.Query.Patterns {
		i := i
		res, st, err := s.execute(ctx, e, v, func(idx int) int64 {
			if idx == i {
				return minEventID
			}
			return 0
		})
		if err != nil {
			return nil, total, err
		}
		addStats(&total, st)
		combined.Set.Rows = append(combined.Set.Rows, res.Set.Rows...)
		for ev := range res.MatchedEvents {
			combined.MatchedEvents[ev] = true
		}
	}
	if a.Query.Return.Distinct {
		combined.Set.Rows = relational.DedupRows(combined.Set.Rows)
	}
	return combined, total, nil
}

// DropViews implements the stream backend surface; partitions never
// materialize views (see SetViewHighWater), so there is nothing to drop.
func (s *Store) DropViews(*tbql.Analyzed) {}

// target is one store a pattern's data query scatters to.
type target struct {
	en    *engine.Engine
	snap  *engine.Snapshot
	shard int // -1: the global store
}

// route selects the stores pattern m's data query must visit on view v.
// Every prune is sound: a dropped partition provably holds no matching
// row, so the union over the selected targets equals the global match
// set. delta > 0 is the pattern's event-ID floor for this round.
func (s *Store) route(v *View, m *engine.PatternMeta, delta int64) []target {
	if m.VarLen {
		// A variable-length flow chains events across partitions under
		// every partitioner (consecutive hops land wherever their events
		// were routed); only the global adjacency sees whole flows.
		return []target{{en: s.globalEngine, snap: v.Global, shard: -1}}
	}
	var lo, hi int64
	if m.Window != nil {
		lo, hi = m.Window.Bounds(v.Global.MinTime, v.Global.MaxTime)
	}
	hostShard := -1
	if !m.UsesGraph && m.SubjHost != "" {
		// Events route by their subject's host, so a subject pinned to one
		// host by an equality literal confines the pattern to that host's
		// partition. (Object pins don't route: an event lives in its
		// subject's partition.)
		if hr, ok := s.part.(HostRouter); ok {
			hostShard = hr.HostShard(m.SubjHost, len(s.shards))
		}
	}
	out := make([]target, 0, len(s.shards))
	for i := range s.shards {
		st := &v.Stats[i]
		if st.Events == 0 {
			continue
		}
		if delta > 0 && st.NextEventID <= delta {
			continue // no event at or past the floor
		}
		if m.OpMask != ^uint32(0) && st.OpMask&m.OpMask == 0 {
			continue // none of the pattern's operations ever routed here
		}
		if m.Window != nil && (st.MaxTime < lo || st.MinTime > hi) {
			continue // every event here lies wholly outside the window
		}
		if hostShard >= 0 && i != hostShard {
			continue
		}
		out = append(out, target{en: s.shards[i].engine, snap: v.Shards[i], shard: i})
	}
	return out
}

// execute is the coordinator's scheduled plan: the engine's serial
// scheduled execution with each pattern's data query scattered.
func (s *Store) execute(ctx context.Context, e *analyzedEntry, v *View, deltaFor func(idx int) int64) (*engine.Result, engine.Stats, error) {
	a := e.a
	order := e.order
	if deltaFor != nil {
		// Delta-constrained patterns go first: a floor over a small append
		// usually matches nothing (short-circuiting the round after one
		// scatter) or a handful of rows whose bindings prune the rest.
		hoisted := make([]int, 0, len(order))
		for _, idx := range order {
			if deltaFor(idx) > 0 {
				hoisted = append(hoisted, idx)
			}
		}
		for _, idx := range order {
			if deltaFor(idx) <= 0 {
				hoisted = append(hoisted, idx)
			}
		}
		order = hoisted
	}

	var stats engine.Stats
	bindings := make(map[string][]int64)
	results := make([]engine.PatternRows, len(a.Query.Patterns))
	var scratch []int64

	for _, idx := range order {
		subj, obj := engine.BindingSpec(a, idx, bindings, s.MaxInList)
		var delta int64
		if deltaFor != nil {
			delta = deltaFor(idx)
		}
		targets := s.route(v, &e.metas[idx], delta)
		if len(targets) == 1 && targets[0].shard < 0 {
			s.globalRouted.Add(1)
		} else {
			s.fanout[len(targets)].Add(1)
		}
		if len(targets) == 0 {
			// Every partition pruned away: the pattern matches nothing,
			// which empties the whole conjunction.
			stats.EmptyPatternID = a.Query.Patterns[idx].ID
			return engine.EmptyResult(a), stats, nil
		}
		pr, pst, err := scatterPattern(ctx, a, targets, idx, subj, obj, delta)
		if err != nil {
			return nil, stats, err
		}
		addStats(&stats, pst)
		results[idx] = pr
		if len(pr.Rows) == 0 {
			stats.EmptyPatternID = a.Query.Patterns[idx].ID
			return engine.EmptyResult(a), stats, nil
		}
		engine.Narrow(a, idx, pr.Rows, bindings, &scratch)
	}

	res, joined, err := engine.JoinPatternRows(ctx, a, v.Global.EntityAttr, results)
	if err != nil {
		return nil, stats, err
	}
	stats.JoinBindings = joined
	return res, stats, nil
}

// scatterPattern fans one pattern's data query out to its targets and
// merges the gathered rows in global event-ID order.
func scatterPattern(ctx context.Context, a *tbql.Analyzed, targets []target, idx int, subj, obj []int64, delta int64) (engine.PatternRows, engine.Stats, error) {
	type outcome struct {
		pr  engine.PatternRows
		st  engine.Stats
		err error
	}
	outs := make([]outcome, len(targets))
	if len(targets) == 1 {
		t := targets[0]
		o := &outs[0]
		o.pr, o.st, o.err = t.en.ScatterPattern(ctx, a, t.snap, idx, subj, obj, delta)
	} else {
		var wg sync.WaitGroup
		for i, t := range targets {
			wg.Add(1)
			go func(i int, t target) {
				defer wg.Done()
				// ScatterPattern recovers its own panics into typed errors,
				// so nothing unwinds past this goroutine.
				o := &outs[i]
				o.pr, o.st, o.err = t.en.ScatterPattern(ctx, a, t.snap, idx, subj, obj, delta)
			}(i, t)
		}
		wg.Wait()
	}

	merged := engine.PatternRows{Idx: idx}
	var stats engine.Stats
	for i := range outs {
		o := &outs[i]
		if o.err != nil {
			return merged, stats, o.err
		}
		merged.HasEvent = o.pr.HasEvent
		merged.Rows = append(merged.Rows, o.pr.Rows...)
		addStats(&stats, o.st)
	}
	if merged.HasEvent {
		// Event-bearing rows merge in global event-ID order (IDs are
		// unique per row), making the gathered order — and everything the
		// join derives from it — independent of shard count, partitioner,
		// and scatter timing. Variable-length-path rows (no event column)
		// come from the single global target in its native order.
		sort.Slice(merged.Rows, func(i, j int) bool {
			ri, rj := &merged.Rows[i], &merged.Rows[j]
			for c := 0; c < 5; c++ {
				if ri[c] != rj[c] {
					return ri[c] < rj[c]
				}
			}
			return false
		})
	}
	return merged, stats, nil
}

// addStats folds one scatter's counters into the round totals.
func addStats(total *engine.Stats, st engine.Stats) {
	total.DataQueries += st.DataQueries
	total.PatternRows += st.PatternRows
	total.JoinBindings += st.JoinBindings
	total.Rel.RowsScanned += st.Rel.RowsScanned
	total.Rel.IndexLookups += st.Rel.IndexLookups
	total.Rel.HashJoinBuilds += st.Rel.HashJoinBuilds
	total.Graph.NodesVisited += st.Graph.NodesVisited
	total.Graph.EdgesTraversed += st.Graph.EdgesTraversed
	total.Graph.IndexLookups += st.Graph.IndexLookups
}
