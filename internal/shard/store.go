package shard

import (
	"sync"
	"sync/atomic"
	"time"

	"threatraptor/internal/audit"
	"threatraptor/internal/engine"
	"threatraptor/internal/tactical"
)

// Store is the sharded store coordinator: the authoritative global store
// plus N partition stores holding routed event subsets over the shared
// entity table. All writes go through AppendBatch, which keeps the fleet
// a consistent prefix (any partition failure unwinds the partitions that
// already committed AND the global append). All reads pin a View.
type Store struct {
	// MaxInList bounds the binding sets pushed into scattered data queries
	// as IN constraints (0: the engine default).
	MaxInList int

	part Partitioner

	// mu serializes writers (AppendBatch); readers never take it.
	mu           sync.Mutex
	global       *engine.Store
	globalEngine *engine.Engine
	shards       []*partition

	view atomic.Pointer[View]

	// analyzed caches parse+analyze by source (Hunt's fast path), info
	// caches per-query routing metadata and schedule order.
	huntMu   sync.Mutex
	analyzed map[string]*analyzedEntry

	// fanout[k] counts scattered data queries that touched k partitions;
	// globalRouted counts pattern queries routed to the global store
	// (variable-length paths).
	fanout       []atomic.Int64
	globalRouted atomic.Int64
	rollbacks    atomic.Int64
}

type partition struct {
	store  *engine.Store
	engine *engine.Engine
	// opMask is the cumulative OR of the op-code bits of every event ever
	// routed to this partition (coordinator-side, exact — the snapshot's
	// own OpMaskBetween is conservative before its first batch).
	opMask uint32
}

// View is one published, immutable generation of the whole sharded store:
// the global snapshot (authoritative state — tactical, provenance, and
// fuzzy reads use it directly) plus one pinned snapshot and routing stat
// per partition. Per-partition snapshots are "globalized": their time
// bounds and bounds epoch are overridden with the global values so window
// lowering inside each shard's engine resolves against the global time
// range, while NextEventID stays shard-local for delta pruning.
type View struct {
	Global *engine.Snapshot
	Shards []*engine.Snapshot
	Stats  []ShardStat
}

// ShardStat is one partition's routing-relevant summary at publish time.
type ShardStat struct {
	// Events is how many events the partition holds.
	Events int
	// FirstEventID/NextEventID bound the partition's global event IDs:
	// every held event e satisfies FirstEventID <= e.ID < NextEventID.
	FirstEventID int64
	NextEventID  int64
	// MinTime/MaxTime are the partition's local event-time bounds (µs).
	MinTime int64
	MaxTime int64
	// OpMask is the OR of the op-code bits of the partition's events.
	OpMask uint32
	// PublishedAt timestamps the partition snapshot.
	PublishedAt time.Time
}

// New builds a sharded store over an already-parsed (and reduced) log:
// the global store loads the whole log, and each of n partitions loads
// the sub-log the partitioner routes to it. n must be >= 1; every
// partition shares log's entity table.
func New(log *audit.Log, n int, part Partitioner) (*Store, error) {
	if n < 1 {
		n = 1
	}
	if part == nil {
		part = ByHash()
	}
	global, err := engine.NewStore(log)
	if err != nil {
		return nil, err
	}
	s := &Store{
		part:         part,
		global:       global,
		globalEngine: &engine.Engine{Store: global, ViewHighWater: -1},
		shards:       make([]*partition, n),
		fanout:       make([]atomic.Int64, n+1),
	}
	buckets := s.routeEvents(log.Entities, log.Events)
	for i := 0; i < n; i++ {
		subLog := &audit.Log{Entities: log.Entities, Events: buckets[i]}
		st, err := engine.NewStore(subLog)
		if err != nil {
			return nil, err
		}
		s.shards[i] = &partition{
			store: st,
			// Partition engines never materialize standing-query views:
			// a per-partition view would join delta rows only against
			// local history and miss cross-shard bindings. The
			// coordinator's delta rounds scatter recompute queries.
			engine: &engine.Engine{Store: st, ViewHighWater: -1},
			opMask: maskOf(buckets[i]),
		}
	}
	s.publishLocked()
	return s, nil
}

// routeEvents buckets events per partition. Copies event values, so the
// buckets stay valid however the caller's slice moves.
func (s *Store) routeEvents(tbl *audit.EntityTable, events []audit.Event) [][]audit.Event {
	n := len(s.shards)
	buckets := make([][]audit.Event, n)
	for i := range events {
		ev := &events[i]
		idx := s.part.Route(ev, tbl.Lookup(ev.SubjectID), n)
		if idx < 0 || idx >= n {
			idx = 0
		}
		buckets[idx] = append(buckets[idx], *ev)
	}
	return buckets
}

func maskOf(events []audit.Event) uint32 {
	var m uint32
	for i := range events {
		m |= events[i].Op.Bit()
	}
	return m
}

// AppendBatch appends one sealed batch to the whole fleet: the global
// store first (which assigns the batch's global event IDs), then every
// partition (all partitions receive the new entities; each event's row
// and edge go to its routed partition alone). The append is atomic across
// the fleet: a partition failure rolls back the partitions that already
// committed and the global append, so a retried batch re-derives the same
// IDs and converges on the same stores. Not safe to run concurrently with
// itself; readers are never blocked (they pin the previous View).
func (s *Store) AppendBatch(entities []*audit.Entity, events []audit.Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()

	gMark := s.global.Mark()
	if err := s.global.AppendBatch(entities, events); err != nil {
		return err
	}
	// events now carry their final global IDs (AppendBatch assigns them
	// in place); route on those.
	buckets := s.routeEvents(s.global.Log.Entities, events)

	marks := make([]engine.StoreMark, len(s.shards))
	for i, p := range s.shards {
		if len(entities) == 0 && len(buckets[i]) == 0 {
			continue
		}
		marks[i] = p.store.Mark()
		if err := p.store.AppendBatch(entities, buckets[i]); err != nil {
			// The failing partition rolled itself back; unwind the ones
			// that committed (reverse order) and the global append.
			for j := i - 1; j >= 0; j-- {
				if len(entities) == 0 && len(buckets[j]) == 0 {
					continue
				}
				s.shards[j].store.Rollback(marks[j])
			}
			s.global.Rollback(gMark)
			s.rollbacks.Add(1)
			return err
		}
	}
	for i, p := range s.shards {
		p.opMask |= maskOf(buckets[i])
	}
	s.publishLocked()
	return nil
}

// publishLocked captures and publishes a new View. Writer-side only.
func (s *Store) publishLocked() {
	g := s.global.Snapshot()
	v := &View{
		Global: g,
		Shards: make([]*engine.Snapshot, len(s.shards)),
		Stats:  make([]ShardStat, len(s.shards)),
	}
	for i, p := range s.shards {
		sn := p.store.Snapshot()
		st := ShardStat{
			Events:      len(sn.Events),
			NextEventID: sn.NextEventID,
			MinTime:     sn.MinTime,
			MaxTime:     sn.MaxTime,
			OpMask:      p.opMask,
			PublishedAt: sn.PublishedAt,
		}
		if len(sn.Events) > 0 {
			st.FirstEventID = sn.Events[0].ID
		}
		v.Stats[i] = st
		// Globalize: window-sensitive plans inside the partition engine
		// must lower against the global time bounds (and recompile on the
		// global epoch), not the partition's local slice of them.
		cp := *sn
		cp.MinTime, cp.MaxTime, cp.Epoch = g.MinTime, g.MaxTime, g.Epoch
		v.Shards[i] = &cp
	}
	s.view.Store(v)
}

// View returns the latest published generation. Safe from any goroutine.
func (s *Store) View() *View { return s.view.Load() }

// Global returns the authoritative global store. Its published snapshot
// equals what an unsharded store over the same input would publish;
// explain, provenance, fuzzy search, and the tactical layer read it.
func (s *Store) Global() *engine.Store { return s.global }

// GlobalStore implements the stream backend surface (the session's
// authoritative store for snapshot readers).
func (s *Store) GlobalStore() *engine.Store { return s.global }

// EntityTable returns the shared entity intern table (global IDs).
func (s *Store) EntityTable() *audit.EntityTable { return s.global.Log.Entities }

// NextEventID returns the global event-ID frontier. Writer-side (callers
// serialize against AppendBatch, as the stream session does).
func (s *Store) NextEventID() int64 { return s.global.NextEventID() }

// Shards returns the partition count.
func (s *Store) Shards() int { return len(s.shards) }

// PartitionerName names the routing function ("hash", "host", ...).
func (s *Store) PartitionerName() string { return s.part.Name() }

// TacticalSource returns the tactical layer's event source: the global
// snapshot, whose event order, adjacency, and op index are exactly the
// unsharded store's.
func (s *Store) TacticalSource() tactical.Source {
	return tactical.SnapSource{Snap: s.global.Snapshot()}
}

// SetViewHighWater is a no-op: sharded standing-query rounds run the
// scattered recompute plan, never per-partition materialized views (a
// partition-local view would miss cross-shard bindings).
func (s *Store) SetViewHighWater(int) {}

// ShardMetrics is one partition's operational summary.
type ShardMetrics struct {
	Shard       int           `json:"shard"`
	Events      int           `json:"events"`
	MinTime     int64         `json:"min_time_us"`
	MaxTime     int64         `json:"max_time_us"`
	SnapshotAge time.Duration `json:"-"`
}

// Metrics reports per-partition event counts and snapshot ages from the
// latest published View.
func (s *Store) Metrics() []ShardMetrics {
	v := s.View()
	now := time.Now()
	out := make([]ShardMetrics, len(v.Stats))
	for i, st := range v.Stats {
		out[i] = ShardMetrics{
			Shard:       i,
			Events:      st.Events,
			MinTime:     st.MinTime,
			MaxTime:     st.MaxTime,
			SnapshotAge: now.Sub(st.PublishedAt),
		}
	}
	return out
}

// FanoutHistogram returns how many scattered data queries touched k
// partitions, for k in [0, Shards()]. Index 0 counts patterns pruned to
// zero partitions (instant empty conjunctions).
func (s *Store) FanoutHistogram() []int64 {
	out := make([]int64, len(s.fanout))
	for i := range s.fanout {
		out[i] = s.fanout[i].Load()
	}
	return out
}

// GlobalRouted counts pattern queries routed to the global store instead
// of the partitions (variable-length path patterns, whose flows cross
// partition boundaries under every partitioner).
func (s *Store) GlobalRouted() int64 { return s.globalRouted.Load() }

// Rollbacks counts fleet-wide append unwinds (a partition append failed
// after the global append succeeded).
func (s *Store) Rollbacks() int64 { return s.rollbacks.Load() }
