package shard

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"threatraptor/internal/audit"
	"threatraptor/internal/cases"
	"threatraptor/internal/engine"
	"threatraptor/internal/extract"
	"threatraptor/internal/faultinject"
	"threatraptor/internal/synth"
	"threatraptor/internal/tbql"
)

// eqConfigs is the acceptance matrix: every shard count crossed with
// every partitioner family. The 2-second time slices make the generated
// logs (which advance in multi-second phases) actually spread across
// time partitions instead of degenerating into one.
var eqConfigs = []struct {
	name string
	n    int
	part Partitioner
}{
	{"1xhash", 1, ByHash()},
	{"2xhash", 2, ByHash()},
	{"4xhash", 4, ByHash()},
	{"8xhash", 8, ByHash()},
	{"2xhost", 2, ByHost()},
	{"4xhost", 4, ByHost()},
	{"8xhost", 8, ByHost()},
	{"2xtime", 2, ByTime(2_000_000)},
	{"4xtime", 4, ByTime(2_000_000)},
	{"8xtime", 8, ByTime(2_000_000)},
}

// sortedRows canonicalizes a result set for order-insensitive comparison
// (the engine does not define a row order; the scatter path does).
func sortedRows(rows [][]string) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = strings.Join(r, "|")
	}
	sort.Strings(out)
	return out
}

func sameEventSet(a, b map[int64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// caseAnalyzed derives the TBQL query a case's report synthesizes — the
// same derivation the engine's execution-path equivalence test uses.
func caseAnalyzed(t *testing.T, c *cases.Case) *tbql.Analyzed {
	t.Helper()
	graph := extract.New(extract.DefaultOptions()).Extract(c.Report).Graph
	q, _, err := synth.Synthesize(graph, synth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := tbql.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestShardedHuntEquivalence is the tentpole acceptance property: for the
// query synthesized from every generated case's report, the scatter-gather
// result over every (shard count x partitioner) configuration must equal
// the single-store engine's result — same rows (compared canonically
// sorted; the engine defines no row order) and the same matched-event set.
// Additionally, all sharded configurations must agree byte-for-byte in
// raw row order: the gathered rows merge in global event-ID order, so the
// output is a pure function of the data, independent of shard count,
// partitioner, and scatter timing.
func TestShardedHuntEquivalence(t *testing.T) {
	for _, c := range cases.All() {
		c := c
		t.Run(c.ID, func(t *testing.T) {
			t.Parallel()
			gen, err := c.Generate(0.5)
			if err != nil {
				t.Fatal(err)
			}
			a := caseAnalyzed(t, c)

			ref, err := engine.NewStore(gen.Log)
			if err != nil {
				t.Fatal(err)
			}
			res, _, err := (&engine.Engine{Store: ref}).Execute(nil, a)
			if err != nil {
				t.Fatal(err)
			}
			want := sortedRows(res.Set.Strings())

			var baseline string // raw (unsorted) rows of the first config
			for _, cfg := range eqConfigs {
				sh, err := New(gen.Log, cfg.n, cfg.part)
				if err != nil {
					t.Fatalf("%s: %v", cfg.name, err)
				}
				sres, _, err := sh.Execute(nil, a)
				if err != nil {
					t.Fatalf("%s: %v", cfg.name, err)
				}
				if got := sortedRows(sres.Set.Strings()); !reflect.DeepEqual(got, want) {
					t.Errorf("%s rows differ from unsharded:\ngot  %v\nwant %v", cfg.name, got, want)
				}
				if !sameEventSet(sres.MatchedEvents, res.MatchedEvents) {
					t.Errorf("%s matched %d events, unsharded %d",
						cfg.name, len(sres.MatchedEvents), len(res.MatchedEvents))
				}
				raw := fmt.Sprint(sres.Set.Strings())
				if baseline == "" {
					baseline = raw
				} else if raw != baseline {
					t.Errorf("%s raw row order differs from %s:\n%s\n%s",
						cfg.name, eqConfigs[0].name, raw, baseline)
				}
			}
		})
	}
}

// TestShardedVarLenEquivalence covers the global-routing path: a
// variable-length flow chains events across partitions under every
// partitioner, so its pattern must route to the authoritative global
// store — and a mixed query must join those global flow rows with
// scattered event-pattern rows through the shared entity table.
func TestShardedVarLenEquivalence(t *testing.T) {
	c := cases.ByID("data_leak")
	if c == nil {
		t.Fatal("data_leak case missing")
	}
	gen, err := c.Generate(0.5)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := engine.NewStore(gen.Log)
	if err != nil {
		t.Fatal(err)
	}
	refEngine := &engine.Engine{Store: ref}

	queries := []string{
		// Pure variable-length flow.
		`proc p1["%/bin/tar%"] ~>(1~8)[connect] ip i1["192.168.29.128"]
return distinct p1, i1`,
		// Mixed: a scattered event pattern joined with a global flow pattern
		// through the shared entity intern table.
		`proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1
proc p1 ~>(1~8)[connect] ip i1["192.168.29.128"]
return distinct p1, f1, i1`,
	}
	for _, cfg := range eqConfigs {
		sh, err := New(gen.Log, cfg.n, cfg.part)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			res, _, err := refEngine.Hunt(nil, q)
			if err != nil {
				t.Fatal(err)
			}
			want := sortedRows(res.Set.Strings())
			if len(want) == 0 {
				t.Fatalf("reference hunt returned no rows; equivalence would be vacuous")
			}
			sres, _, err := sh.Hunt(nil, q)
			if err != nil {
				t.Fatalf("%s: %v", cfg.name, err)
			}
			if got := sortedRows(sres.Set.Strings()); !reflect.DeepEqual(got, want) {
				t.Errorf("%s %q:\ngot  %v\nwant %v", cfg.name, q, got, want)
			}
		}
		if sh.GlobalRouted() == 0 {
			t.Errorf("%s: no pattern routed to the global store", cfg.name)
		}
	}
}

// TestShardedDeltaEquivalence checks the standing-query evaluation rule:
// after appending a suffix batch, ExecuteDelta over the sharded store must
// return the same delta bindings as the unsharded engine's recompute over
// the full store with the same event-ID floor.
func TestShardedDeltaEquivalence(t *testing.T) {
	c := cases.ByID("data_leak")
	if c == nil {
		t.Fatal("data_leak case missing")
	}
	gen, err := c.Generate(0.5)
	if err != nil {
		t.Fatal(err)
	}
	a := caseAnalyzed(t, c)
	full, err := engine.NewStore(gen.Log)
	if err != nil {
		t.Fatal(err)
	}
	// Disable materialized views: the recompute path is the shared oracle.
	refEngine := &engine.Engine{Store: full, ViewHighWater: -1}

	events := gen.Log.Events
	for _, split := range []int{len(events) / 2, len(events) * 9 / 10} {
		floor := events[split].ID
		res, _, err := refEngine.ExecuteDelta(nil, a, floor)
		if err != nil {
			t.Fatal(err)
		}
		want := sortedRows(res.Set.Strings())

		for _, cfg := range eqConfigs {
			prefix := &audit.Log{Entities: gen.Log.Entities, Events: events[:split]}
			sh, err := New(prefix, cfg.n, cfg.part)
			if err != nil {
				t.Fatal(err)
			}
			if err := sh.AppendBatch(nil, append([]audit.Event(nil), events[split:]...)); err != nil {
				t.Fatalf("%s append: %v", cfg.name, err)
			}
			if got, wantN := sh.NextEventID(), full.NextEventID(); got != wantN {
				t.Fatalf("%s frontier %d, want %d", cfg.name, got, wantN)
			}
			sres, _, err := sh.ExecuteDelta(nil, a, floor)
			if err != nil {
				t.Fatalf("%s: %v", cfg.name, err)
			}
			if got := sortedRows(sres.Set.Strings()); !reflect.DeepEqual(got, want) {
				t.Errorf("%s split=%d delta rows differ:\ngot  %v\nwant %v", cfg.name, split, got, want)
			}
		}
	}
}

// TestShardedAppendFaultRollback is the chaos leg: a fault injected into
// ONE partition's append (the global append has already committed) must
// unwind the whole fleet — partitions and global — leaving the published
// View untouched, and a clean retry must converge on exactly the state of
// a never-faulted twin.
func TestShardedAppendFaultRollback(t *testing.T) {
	c := cases.ByID("data_leak")
	if c == nil {
		t.Fatal("data_leak case missing")
	}
	gen, err := c.Generate(0.3)
	if err != nil {
		t.Fatal(err)
	}
	emptyLog := func() *audit.Log {
		return &audit.Log{Entities: gen.Log.Entities}
	}
	sh, err := New(emptyLog(), 2, ByHash())
	if err != nil {
		t.Fatal(err)
	}
	twin, err := New(emptyLog(), 2, ByHash())
	if err != nil {
		t.Fatal(err)
	}
	batch := func(lo, hi int) []audit.Event {
		return append([]audit.Event(nil), gen.Log.Events[lo:hi]...)
	}
	mid := len(gen.Log.Events) / 2

	// Hit 1 is the global store's append (must succeed); hit 2 is the
	// first partition's append, which fails mid-fleet.
	faultinject.Arm(faultinject.Plan{
		engine.FaultAppendEventsRel: {Hits: []int{2}, Mode: faultinject.ModeError},
	})
	t.Cleanup(faultinject.Disarm)
	err = sh.AppendBatch(nil, batch(0, mid))
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("faulted append returned %v, want ErrInjected", err)
	}
	if got := sh.Rollbacks(); got != 1 {
		t.Fatalf("rollbacks = %d, want 1", got)
	}
	// The unwind must leave no published trace: frontier back at the
	// start, zero events globally and in every partition.
	if got := sh.NextEventID(); got != 1 {
		t.Fatalf("frontier after rollback = %d, want 1", got)
	}
	v := sh.View()
	if len(v.Global.Events) != 0 {
		t.Fatalf("global snapshot kept %d events after rollback", len(v.Global.Events))
	}
	for i, st := range v.Stats {
		if st.Events != 0 {
			t.Fatalf("partition %d kept %d events after rollback", i, st.Events)
		}
	}

	// A clean retry of the identical batch converges with the twin.
	faultinject.Disarm()
	if err := sh.AppendBatch(nil, batch(0, mid)); err != nil {
		t.Fatalf("retry: %v", err)
	}
	if err := sh.AppendBatch(nil, batch(mid, len(gen.Log.Events))); err != nil {
		t.Fatal(err)
	}
	if err := twin.AppendBatch(nil, batch(0, mid)); err != nil {
		t.Fatal(err)
	}
	if err := twin.AppendBatch(nil, batch(mid, len(gen.Log.Events))); err != nil {
		t.Fatal(err)
	}
	if a, b := sh.NextEventID(), twin.NextEventID(); a != b {
		t.Fatalf("frontier diverged: %d vs twin %d", a, b)
	}
	if !reflect.DeepEqual(sh.Global().Log.Events, twin.Global().Log.Events) {
		t.Fatal("global event log diverged from never-faulted twin")
	}
	sv, tv := sh.View(), twin.View()
	for i := range sv.Stats {
		a, b := sv.Stats[i], tv.Stats[i]
		if a.Events != b.Events || a.FirstEventID != b.FirstEventID ||
			a.NextEventID != b.NextEventID || a.OpMask != b.OpMask {
			t.Fatalf("partition %d diverged: %+v vs twin %+v", i, a, b)
		}
	}
	a := caseAnalyzed(t, c)
	res, _, err := sh.Execute(nil, a)
	if err != nil {
		t.Fatal(err)
	}
	tres, _, err := twin.Execute(nil, a)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res.Set.Strings()) != fmt.Sprint(tres.Set.Strings()) {
		t.Fatal("post-recovery hunt diverged from never-faulted twin")
	}
}
