package tactical

import (
	"bytes"
	"testing"

	"threatraptor/internal/audit"
	"threatraptor/internal/cases"
	"threatraptor/internal/engine"
	"threatraptor/internal/rules"
)

// demoSet compiles the same rule set as examples/rules/demo.json (minus
// the execute rule, which the simulator cases rarely trigger).
func demoSet(t testing.TB) *rules.Set {
	t.Helper()
	set, err := rules.Compile([]rules.Rule{
		{Name: "credential-file-read", Tactic: "credential-access", Technique: "T1003.008",
			Severity: 8, Ops: []string{"read"},
			Where: map[string]string{"object.kind": "file", "object.name": "/etc/*"}},
		{Name: "staging-write-tmp", Tactic: "collection", Technique: "T1074.001",
			Severity: 5, Ops: []string{"write"},
			Where: map[string]string{"object.kind": "file", "object.name": "/tmp/*"}},
		{Name: "outbound-connect", Tactic: "command-and-control", Technique: "T1071",
			Severity: 5, Ops: []string{"connect"},
			Where: map[string]string{"object.kind": "ip"}},
		{Name: "outbound-send", Tactic: "exfiltration", Technique: "T1048",
			Severity: 7, Ops: []string{"send"},
			Where: map[string]string{"object.kind": "ip"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// storeFrom builds a store from a scripted simulator run.
func storeFrom(t testing.TB, fill func(*audit.Simulator)) *engine.Store {
	t.Helper()
	sim := audit.NewSimulator(1, 1_700_000_000_000_000)
	fill(sim)
	log, err := audit.ParseRecords(sim.Records())
	if err != nil {
		t.Fatal(err)
	}
	store, err := engine.NewStore(log)
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// TestAttributionJoinsChain pins the IIP attribution semantics: an alert
// whose subject causally descends from an earlier incident's entities
// joins that incident (here through an untagged intermediate file read),
// while a causally unrelated alert opens its own.
func TestAttributionJoinsChain(t *testing.T) {
	tar := audit.Proc{PID: 10, Exe: "/bin/tar", User: "u", Group: "g"}
	curl := audit.Proc{PID: 11, Exe: "/usr/bin/curl", User: "u", Group: "g"}
	vim := audit.Proc{PID: 12, Exe: "/usr/bin/vim", User: "u", Group: "g"}
	store := storeFrom(t, func(sim *audit.Simulator) {
		sim.ReadFile(tar, "/etc/passwd", 100) // alert: credential-access
		sim.Advance(1_000_000)
		sim.WriteFile(tar, "/tmp/stage.tar", 100) // alert: collection
		sim.Advance(1_000_000)
		sim.ReadFile(curl, "/tmp/stage.tar", 100) // no rule, but a causal link
		sim.Advance(1_000_000)
		sim.Connect(curl, "10.0.0.8", 50000, "1.2.3.4", 443, "tcp") // alert: C2, joins via the link
		sim.Advance(1_000_000)
		sim.Connect(vim, "10.0.0.8", 50001, "5.6.7.8", 443, "tcp") // alert: C2, unrelated
	})
	incs := Analyze(store.Snapshot(), Config{Rules: demoSet(t)})
	if len(incs) != 2 {
		t.Fatalf("got %d incidents, want 2: %+v", len(incs), incs)
	}
	top := incs[0]
	if top.RootEntity != "/bin/tar" {
		t.Fatalf("top incident root = %q, want /bin/tar", top.RootEntity)
	}
	if top.AlertCount != 3 || len(top.Alerts) != 3 {
		t.Fatalf("top incident has %d alerts (%d kept), want 3", top.AlertCount, len(top.Alerts))
	}
	// credential-access -> collection -> command-and-control is a full
	// kill-chain-ordered sequence across two processes.
	if top.ChainLen != 3 {
		t.Fatalf("top ChainLen = %d, want 3", top.ChainLen)
	}
	if top.ChainScore != 8+5+5 {
		t.Fatalf("top ChainScore = %d, want 18", top.ChainScore)
	}
	// The IIP subgraph holds the alert endpoints plus the connecting path:
	// tar, /etc/passwd, /tmp/stage.tar, curl, and the C2 address.
	if len(top.Entities) != 5 {
		t.Fatalf("top incident IIP has %d entities, want 5", len(top.Entities))
	}
	if incs[1].RootEntity != "/usr/bin/vim" || incs[1].ChainLen != 1 {
		t.Fatalf("second incident = root %q chain %d, want vim chain 1",
			incs[1].RootEntity, incs[1].ChainLen)
	}
}

// TestKillChainRequiresOrder: alerts whose tactics run against the kill
// chain (exfiltration before credential-access) never chain, however
// clear their happens-before order is.
func TestKillChainRequiresOrder(t *testing.T) {
	p := audit.Proc{PID: 10, Exe: "/bin/x", User: "u", Group: "g"}
	store := storeFrom(t, func(sim *audit.Simulator) {
		sim.Send(p, "10.0.0.8", 50000, "1.2.3.4", 443, "tcp", 100) // exfiltration (rank 10)
		sim.Advance(1_000_000)
		sim.ReadFile(p, "/etc/passwd", 100) // credential-access (rank 5)
	})
	incs := Analyze(store.Snapshot(), Config{Rules: demoSet(t)})
	if len(incs) != 1 {
		t.Fatalf("got %d incidents, want 1", len(incs))
	}
	if incs[0].AlertCount != 2 {
		t.Fatalf("AlertCount = %d, want 2", incs[0].AlertCount)
	}
	if incs[0].ChainLen != 1 {
		t.Fatalf("ChainLen = %d, want 1 (tactic ranks decrease)", incs[0].ChainLen)
	}
	if incs[0].ChainScore != 8 {
		t.Fatalf("ChainScore = %d, want 8 (best single alert)", incs[0].ChainScore)
	}
}

// TestRoundSkipsForeignOps: a delta whose op bitmap misses every rule
// trigger produces no alerts (and the round's tagging loop never runs —
// the snapshot op bitmap gates it).
func TestRoundSkipsForeignOps(t *testing.T) {
	p := audit.Proc{PID: 10, Exe: "/bin/x", User: "u", Group: "g"}
	store := storeFrom(t, func(sim *audit.Simulator) {
		sim.ReadFile(p, "/etc/passwd", 100)
		sim.WriteFile(p, "/tmp/out", 100)
	})
	set, err := rules.Compile([]rules.Rule{
		{Name: "exec-only", Tactic: "execution", Ops: []string{"execute"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := store.Snapshot()
	if snap.OpMaskBetween(1, snap.NextEventID)&set.OpMask() != 0 {
		t.Fatal("delta op bitmap intersects the rule mask; skip not exercised")
	}
	a := NewAnalyzer(Config{Rules: set})
	rs := a.Round(snap, 1)
	if rs.Alerts != 0 || rs.Incidents != 0 {
		t.Fatalf("skipped round tagged %d alerts, %d incidents", rs.Alerts, rs.Incidents)
	}
	if st := a.Stats(); st.Rounds != 1 || st.AlertsTagged != 0 {
		t.Fatalf("Stats = %+v, want 1 round, 0 alerts", st)
	}
}

// TestMaxAlertsCap: alerts past the per-incident TPG cap still count
// toward AlertCount and SeveritySum but add no DP vertices.
func TestMaxAlertsCap(t *testing.T) {
	p := audit.Proc{PID: 10, Exe: "/bin/x", User: "u", Group: "g"}
	store := storeFrom(t, func(sim *audit.Simulator) {
		for _, f := range []string{"/tmp/a", "/tmp/b", "/tmp/c", "/tmp/d"} {
			sim.WriteFile(p, f, 100)
			sim.Advance(1_000_000)
		}
	})
	incs := Analyze(store.Snapshot(), Config{Rules: demoSet(t), MaxAlerts: 2})
	if len(incs) != 1 {
		t.Fatalf("got %d incidents, want 1", len(incs))
	}
	inc := incs[0]
	if len(inc.Alerts) != 2 {
		t.Fatalf("kept %d TPG alerts, want cap of 2", len(inc.Alerts))
	}
	if inc.AlertCount != 4 || inc.SeveritySum != 4*5 {
		t.Fatalf("AlertCount=%d SeveritySum=%d, want 4 and 20", inc.AlertCount, inc.SeveritySum)
	}
	if inc.ChainLen != 2 {
		t.Fatalf("ChainLen = %d, want 2 (DP sees only kept alerts)", inc.ChainLen)
	}
}

// TestIncrementalRoundsMatchOneShot: driving the analyzer one sealed
// batch at a time produces byte-identical ranked incidents to a single
// round over the whole log — the live path and the CLI batch path agree.
func TestIncrementalRoundsMatchOneShot(t *testing.T) {
	recs := caseRecords(t, "data_leak", 0.05)
	log, err := audit.ParseRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	wholeStore, err := engine.NewStore(log)
	if err != nil {
		t.Fatal(err)
	}
	want := mustMarshal(t, Analyze(wholeStore.Snapshot(), Config{Rules: demoSet(t)}))

	// Rebuild the same store by appended batches, running a tactical
	// round per batch like the stream session does.
	incStore, err := engine.NewStore(audit.NewLog())
	if err != nil {
		t.Fatal(err)
	}
	// Entities live in the store log's intern table (the stream parser
	// fills it); AppendBatch only mirrors them into the backends.
	for _, e := range log.Entities.Dense() {
		incStore.Log.Entities.Intern(e)
	}
	if err := incStore.AppendBatch(log.Entities.Dense(), nil); err != nil {
		t.Fatal(err)
	}
	a := NewAnalyzer(Config{Rules: demoSet(t)})
	const per = 50
	events := append([]audit.Event(nil), log.Events...)
	for i := 0; i < len(events); i += per {
		j := i + per
		if j > len(events) {
			j = len(events)
		}
		lo := incStore.NextEventID()
		if err := incStore.AppendBatch(nil, events[i:j]); err != nil {
			t.Fatal(err)
		}
		a.Round(incStore.Snapshot(), lo)
	}
	got := mustMarshal(t, a.Ranked())
	if !bytes.Equal(want, got) {
		t.Fatalf("incremental rounds diverged from one-shot analysis:\n one-shot: %d bytes\n rounds:   %d bytes\n%s\nvs\n%s",
			len(want), len(got), clip(want), clip(got))
	}
}

// TestGoldenDeterminism is the satellite-3 golden test: regenerating a
// DARPA TC benchmark case from scratch and re-analyzing it produces a
// byte-identical ranked incident list, and re-ranking the same analyzer
// state is byte-stable too.
func TestGoldenDeterminism(t *testing.T) {
	ids := []string{"tc_theia_1", "tc_trace_2", "tc_fivedirections_1", "data_leak"}
	totalAlerts := int64(0)
	for _, id := range ids {
		t.Run(id, func(t *testing.T) {
			set := demoSet(t)
			run := func() ([]byte, int64) {
				c := cases.ByID(id)
				if c == nil {
					t.Fatalf("case %s missing", id)
				}
				gen, err := c.Generate(0.1)
				if err != nil {
					t.Fatal(err)
				}
				store, err := engine.NewStore(gen.Log)
				if err != nil {
					t.Fatal(err)
				}
				a := NewAnalyzer(Config{Rules: set})
				a.Round(store.Snapshot(), 1)
				first := mustMarshal(t, a.Ranked())
				again := mustMarshal(t, a.Ranked())
				if !bytes.Equal(first, again) {
					t.Fatal("re-ranking the same analyzer state changed the JSON")
				}
				return first, a.Stats().AlertsTagged
			}
			j1, alerts := run()
			j2, _ := run()
			if !bytes.Equal(j1, j2) {
				t.Fatalf("regenerated case produced different ranked incidents:\n%s\nvs\n%s", clip(j1), clip(j2))
			}
			totalAlerts += alerts
		})
	}
	if totalAlerts == 0 {
		t.Fatal("no alerts tagged across any golden case; the test is vacuous")
	}
}

// caseRecords regenerates a benchmark case's raw record stream, scaled.
func caseRecords(t testing.TB, id string, scale float64) []audit.Record {
	t.Helper()
	c := cases.ByID(id)
	if c == nil {
		t.Fatalf("case %s missing", id)
	}
	sim := audit.NewSimulator(c.Seed, 1_700_000_000_000_000)
	benign := int(float64(c.BenignActions) * scale)
	sim.GenerateBenign(audit.BenignConfig{Users: 15, Actions: benign / 2})
	sim.Advance(5_000_000)
	c.Attack(sim)
	sim.Advance(5_000_000)
	sim.GenerateBenign(audit.BenignConfig{Users: 15, Actions: benign - benign/2})
	return sim.Records()
}

func mustMarshal(t testing.TB, incs []Incident) []byte {
	t.Helper()
	b, err := MarshalIncidents(incs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// clip truncates JSON for failure messages.
func clip(b []byte) []byte {
	if len(b) > 2000 {
		return b[:2000]
	}
	return b
}
