// Package tactical is the detection layer above the query engine: it
// turns rule-tagged audit events (alerts) into ranked incidents, following
// the RapSheet tactical-provenance design (Hassan et al., Oakland 2020).
//
// Per sealed batch, a tactical round runs against the pinned store
// snapshot — never inside AppendBatch — in three steps:
//
//  1. Alert tagging. Every event of the delta is matched against the
//     compiled rule set (internal/rules); matches become Alerts carrying
//     the rule's tactic/technique label and severity.
//  2. IIP extraction. Each alert is attributed to an incident by bounded
//     backward reachability over the snapshot's time-sorted adjacency
//     (graphdb.View.VisitEventEdges): if the alert's subject is causally
//     reachable from an entity an earlier alert touched, the alert joins
//     that incident; otherwise its subject is a new initial infection
//     point (IIP) and opens a new incident. The entities on the
//     connecting paths form the incident's IIP subgraph.
//  3. TPG scoring. An incident's alerts form its tactical provenance
//     graph (TPG): vertices are alerts, edges are happens-before pairs
//     (u ends before v starts). The kill-chain score is the longest
//     happens-before-ordered alert subsequence whose MITRE tactic ranks
//     are non-decreasing, computed with an incremental DP; incidents rank
//     by chain length, then chain severity, then earliest alert.
//
// Everything is deterministic: the same log produces the same ranked
// incident list byte for byte (adjacency is time-sorted, ties break on
// IDs), which the golden tests pin.
package tactical

import (
	"encoding/json"
	"sort"
	"sync"

	"threatraptor/internal/audit"
	"threatraptor/internal/engine"
	"threatraptor/internal/graphdb"
	"threatraptor/internal/rules"
)

// Alert is one rule-tagged audit event — a vertex of its incident's TPG.
type Alert struct {
	EventID   int64  `json:"event_id"`
	Rule      string `json:"rule"`
	Tactic    string `json:"tactic"`
	Technique string `json:"technique,omitempty"`
	Severity  int    `json:"severity"`
	Op        string `json:"op"`
	SubjectID int64  `json:"subject_id"`
	ObjectID  int64  `json:"object_id"`
	Subject   string `json:"subject"`
	Object    string `json:"object"`
	StartUS   int64  `json:"start_us"`
	EndUS     int64  `json:"end_us"`

	tacticRank int
	// chainLen/chainSev memoize the DP: the best kill chain ending at
	// this alert (length, severity sum).
	chainLen int
	chainSev int
}

// Incident is one ranked incident: an IIP subgraph plus the TPG built
// from the alerts attributed to it.
type Incident struct {
	ID int `json:"id"`
	// RootEntityID / RootEntity identify the initial infection point (the
	// first attributed alert's subject).
	RootEntityID int64  `json:"root_entity_id"`
	RootEntity   string `json:"root_entity"`
	// ChainLen and ChainScore are the kill-chain DP result: the length of
	// the longest happens-before-ordered, tactic-ordered alert
	// subsequence, and that chain's severity sum.
	ChainLen   int `json:"chain_len"`
	ChainScore int `json:"chain_score"`
	// SeveritySum adds up every attributed alert's severity.
	SeveritySum int `json:"severity_sum"`
	// AlertCount counts every attributed alert, including ones beyond
	// the per-incident TPG cap.
	AlertCount int   `json:"alert_count"`
	FirstUS    int64 `json:"first_us"`
	LastUS     int64 `json:"last_us"`
	// Entities is the sorted IIP subgraph vertex set: alert endpoints
	// plus the backward-reachability path entities that attributed the
	// alerts here.
	Entities []int64 `json:"iip_entities"`
	// Alerts holds the TPG vertices in happens-before (start time, event
	// ID) order, capped at MaxAlerts.
	Alerts []Alert `json:"alerts"`
}

// Config bounds a tactical analyzer.
type Config struct {
	// Rules is the compiled rule set; nil disables tagging entirely.
	Rules *rules.Set
	// MaxDepth bounds the backward-reachability BFS depth (default 8).
	MaxDepth int
	// MaxVisited bounds the entities one attribution BFS may visit
	// (default 512).
	MaxVisited int
	// MaxAlerts caps how many alerts one incident keeps in its TPG
	// (default 256); alerts past the cap still count toward AlertCount
	// and SeveritySum but add no DP vertices, keeping a round's scoring
	// cost bounded however long an incident lives.
	MaxAlerts int
}

func (c Config) withDefaults() Config {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 8
	}
	if c.MaxVisited <= 0 {
		c.MaxVisited = 512
	}
	if c.MaxAlerts <= 0 {
		c.MaxAlerts = 256
	}
	return c
}

// Stats are an analyzer's lifetime totals.
type Stats struct {
	// AlertsTagged counts every alert ever tagged.
	AlertsTagged int64
	// Rounds counts completed tactical rounds.
	Rounds int64
	// Incidents counts incidents currently open.
	Incidents int
}

// RoundStats summarizes one tactical round.
type RoundStats struct {
	// Alerts tagged in this round's delta.
	Alerts int
	// NewIncidents opened by this round.
	NewIncidents int
	// Incidents open after the round.
	Incidents int
}

// Analyzer accumulates incidents across tactical rounds. One analyzer
// belongs to one session; Round is called from the ingest path (after a
// successful append) and the read accessors are safe from any goroutine.
type Analyzer struct {
	mu        sync.Mutex
	cfg       Config
	marked    map[int64]int // entity ID -> incident index (first mark wins)
	incidents []*Incident
	tagged    int64
	rounds    int64
	// scratch buffers reused across rounds.
	matchBuf []int
	queue    []int64
}

// NewAnalyzer creates an analyzer over the given config.
func NewAnalyzer(cfg Config) *Analyzer {
	return &Analyzer{cfg: cfg.withDefaults(), marked: make(map[int64]int)}
}

// Stats returns the analyzer's lifetime totals.
func (a *Analyzer) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Stats{AlertsTagged: a.tagged, Rounds: a.rounds, Incidents: len(a.incidents)}
}

// Source is the pinned store generation a tactical round reads: an event
// frontier, the per-batch op bitmap, the ID-ordered event slice, dense
// entity resolution, and time-bounded adjacency visits. engine.Snapshot
// satisfies it through the SnapSource adapter; a sharded store (see
// internal/shard) feeds the analyzer its global snapshot the same way, so
// the analyzer itself never knows about sharding.
type Source interface {
	// Frontier is the exclusive event-ID ceiling: every readable event
	// has ID < Frontier().
	Frontier() int64
	// OpMaskBetween folds the op-code bits of events with ID in [lo, hi)
	// (conservative supersets allowed).
	OpMaskBetween(lo, hi int64) uint32
	// EventsSince returns the events with ID >= lo in ascending ID order.
	EventsSince(lo int64) []audit.Event
	// Entity resolves an entity ID (nil when unknown).
	Entity(id int64) *audit.Entity
	// VisitEventEdges calls fn for every event edge incident to entity id
	// with start_time <= maxStart: outgoing first, then incoming, each in
	// ascending (start_time, event ID) order; fn returning false stops.
	VisitEventEdges(id int64, maxStart int64, fn func(graphdb.EventEdgeRef) bool)
}

// SnapSource adapts an engine snapshot to the Source interface.
type SnapSource struct{ Snap *engine.Snapshot }

func (s SnapSource) Frontier() int64                   { return s.Snap.NextEventID }
func (s SnapSource) OpMaskBetween(lo, hi int64) uint32 { return s.Snap.OpMaskBetween(lo, hi) }
func (s SnapSource) Entity(id int64) *audit.Entity     { return snapEntity(s.Snap, id) }
func (s SnapSource) EventsSince(lo int64) []audit.Event {
	events := s.Snap.Events
	start := sort.Search(len(events), func(i int) bool { return events[i].ID >= lo })
	return events[start:]
}
func (s SnapSource) VisitEventEdges(id int64, maxStart int64, fn func(graphdb.EventEdgeRef) bool) {
	s.Snap.Graph.VisitEventEdges(id, maxStart, fn)
}

// Round runs one tactical round over the events with IDs in
// [lo, snap.NextEventID): tags them against the rule set, attributes the
// alerts to incidents, and rescores the touched incidents. It reads only
// the pinned snapshot, so it runs strictly after AppendBatch published —
// a rolled-back append was never published and can produce no alert.
func (a *Analyzer) Round(snap *engine.Snapshot, lo int64) RoundStats {
	if snap == nil {
		return a.RoundOn(nil, lo)
	}
	return a.RoundOn(SnapSource{Snap: snap}, lo)
}

// RoundOn is Round over an abstract source (nil behaves like a nil
// snapshot: the round counts but tags nothing).
func (a *Analyzer) RoundOn(src Source, lo int64) RoundStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rounds++
	rs := RoundStats{Incidents: len(a.incidents)}
	set := a.cfg.Rules
	if set == nil || src == nil {
		return rs
	}
	hi := src.Frontier()
	if lo < 1 {
		lo = 1
	}
	if src.OpMaskBetween(lo, hi)&set.OpMask() == 0 {
		// No event in the delta carries any rule's trigger operation.
		return rs
	}
	events := src.EventsSince(lo)
	touched := map[int]bool{}
	for i := 0; i < len(events) && events[i].ID < hi; i++ {
		ev := &events[i]
		subj := src.Entity(ev.SubjectID)
		obj := src.Entity(ev.ObjectID)
		a.matchBuf = set.Match(ev, subj, obj, a.matchBuf[:0])
		for _, ri := range a.matchBuf {
			r := set.Rule(ri)
			al := Alert{
				EventID:    ev.ID,
				Rule:       r.Name,
				Tactic:     r.Tactic,
				Technique:  r.Technique,
				Severity:   set.RuleSeverity(ri),
				Op:         ev.Op.String(),
				SubjectID:  ev.SubjectID,
				ObjectID:   ev.ObjectID,
				Subject:    entityName(subj),
				Object:     entityName(obj),
				StartUS:    ev.StartTime,
				EndUS:      ev.EndTime,
				tacticRank: set.RuleTacticRank(ri),
			}
			a.tagged++
			rs.Alerts++
			if a.attribute(src, al, touched) {
				rs.NewIncidents++
			}
		}
	}
	for idx := range touched {
		a.rescore(a.incidents[idx])
	}
	// Deterministic map drain isn't needed: rescore per incident is
	// order-independent (the DP reads only that incident's alerts).
	rs.Incidents = len(a.incidents)
	return rs
}

// attribute assigns one alert to an incident, opening a new one when no
// causal predecessor is marked. Returns true when a new incident opened.
func (a *Analyzer) attribute(src Source, al Alert, touched map[int]bool) bool {
	idx, path := a.findIncident(src, al)
	opened := false
	if idx < 0 {
		inc := &Incident{
			ID:           len(a.incidents) + 1,
			RootEntityID: al.SubjectID,
			RootEntity:   al.Subject,
			FirstUS:      al.StartUS,
			LastUS:       al.EndUS,
		}
		a.incidents = append(a.incidents, inc)
		idx = len(a.incidents) - 1
		opened = true
	}
	inc := a.incidents[idx]
	inc.AlertCount++
	inc.SeveritySum += al.Severity
	if al.StartUS < inc.FirstUS {
		inc.FirstUS = al.StartUS
	}
	if al.EndUS > inc.LastUS {
		inc.LastUS = al.EndUS
	}
	a.mark(al.SubjectID, idx, inc)
	a.mark(al.ObjectID, idx, inc)
	for _, id := range path {
		a.mark(id, idx, inc)
	}
	if len(inc.Alerts) < a.cfg.MaxAlerts {
		// Alerts arrive in event-ID order; keep the TPG vertex list in
		// happens-before (start time, event ID) order for the DP.
		pos := sort.Search(len(inc.Alerts), func(i int) bool {
			x := &inc.Alerts[i]
			return x.StartUS > al.StartUS || (x.StartUS == al.StartUS && x.EventID > al.EventID)
		})
		inc.Alerts = append(inc.Alerts, Alert{})
		copy(inc.Alerts[pos+1:], inc.Alerts[pos:])
		inc.Alerts[pos] = al
		// A mid-list insertion shifts the DP inputs of everything to its
		// right; drop those memos so rescore recomputes them. The common
		// case appends at the tail and invalidates nothing.
		for i := pos + 1; i < len(inc.Alerts); i++ {
			inc.Alerts[i].chainLen = 0
		}
	}
	touched[idx] = true
	return opened
}

// mark records an entity as belonging to an incident; the first mark wins
// (an entity stays attributed to the earliest incident that touched it).
func (a *Analyzer) mark(id int64, idx int, inc *Incident) {
	if id <= 0 {
		return
	}
	if _, ok := a.marked[id]; !ok {
		a.marked[id] = idx
	}
	// The incident's IIP vertex set keeps every entity it touched, even
	// ones first marked by an earlier incident.
	n := len(inc.Entities)
	pos := sort.Search(n, func(i int) bool { return inc.Entities[i] >= id })
	if pos < n && inc.Entities[pos] == id {
		return
	}
	inc.Entities = append(inc.Entities, 0)
	copy(inc.Entities[pos+1:], inc.Entities[pos:])
	inc.Entities[pos] = id
}

// findIncident runs the bounded backward-reachability BFS from the
// alert's subject over the snapshot adjacency: the first marked entity
// reached decides the incident, and the connecting path (alert subject
// exclusive, marked entity inclusive) is returned for the IIP subgraph.
// Direct marks on the subject or object short-circuit the traversal.
func (a *Analyzer) findIncident(src Source, al Alert) (int, []int64) {
	if idx, ok := a.marked[al.SubjectID]; ok {
		return idx, nil
	}
	if idx, ok := a.marked[al.ObjectID]; ok {
		return idx, nil
	}
	type visit struct {
		bound int64
		prev  int64
		depth int
	}
	visited := map[int64]visit{al.SubjectID: {bound: al.StartUS, prev: 0, depth: 0}}
	a.queue = append(a.queue[:0], al.SubjectID)
	for qi := 0; qi < len(a.queue); qi++ {
		id := a.queue[qi]
		v := visited[id]
		if v.depth >= a.cfg.MaxDepth {
			continue
		}
		foundIdx, foundID := -1, int64(0)
		src.VisitEventEdges(id, v.bound, func(e graphdb.EventEdgeRef) bool {
			// Causal predecessor: information flows against the edge for
			// read/receive (object -> subject), with it otherwise
			// (subject -> object) — the provenance-graph convention.
			into := e.Op == "read" || e.Op == "receive"
			var pred int64
			switch {
			case e.Out && into:
				pred = e.Other
			case !e.Out && !into:
				pred = e.Other
			default:
				return true
			}
			if _, ok := visited[pred]; ok {
				return true
			}
			if idx, ok := a.marked[pred]; ok {
				foundIdx, foundID = idx, pred
				visited[pred] = visit{bound: e.Start, prev: id, depth: v.depth + 1}
				return false
			}
			if len(visited) >= a.cfg.MaxVisited {
				return false
			}
			visited[pred] = visit{bound: e.Start, prev: id, depth: v.depth + 1}
			a.queue = append(a.queue, pred)
			return true
		})
		if foundIdx >= 0 {
			// Walk the parent chain back to (but excluding) the subject.
			var path []int64
			for id := foundID; id != 0 && id != al.SubjectID; id = visited[id].prev {
				path = append(path, id)
			}
			return foundIdx, path
		}
		if len(visited) >= a.cfg.MaxVisited {
			break
		}
	}
	return -1, nil
}

// rescore recomputes the incident's kill-chain DP for alerts whose memo
// is unset. The TPG vertex list is happens-before sorted, so dp[i] only
// looks left: the best chain ending at alert i extends the best chain
// ending at any j<i with j.End <= i.Start and tactic rank j <= i.
func (a *Analyzer) rescore(inc *Incident) {
	al := inc.Alerts
	for i := range al {
		if al[i].chainLen != 0 {
			continue
		}
		bestLen, bestSev := 1, al[i].Severity
		for j := 0; j < i; j++ {
			if al[j].EndUS > al[i].StartUS || al[j].tacticRank > al[i].tacticRank {
				continue
			}
			if l, s := al[j].chainLen+1, al[j].chainSev+al[i].Severity; l > bestLen || (l == bestLen && s > bestSev) {
				bestLen, bestSev = l, s
			}
		}
		al[i].chainLen, al[i].chainSev = bestLen, bestSev
	}
	inc.ChainLen, inc.ChainScore = 0, 0
	for i := range al {
		if al[i].chainLen > inc.ChainLen || (al[i].chainLen == inc.ChainLen && al[i].chainSev > inc.ChainScore) {
			inc.ChainLen, inc.ChainScore = al[i].chainLen, al[i].chainSev
		}
	}
}

// Ranked returns deep copies of the incidents in rank order: kill-chain
// length, then chain severity, then earliest alert time, then incident
// ID — a total order, so the ranking (and its JSON) is byte-stable.
func (a *Analyzer) Ranked() []Incident {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Incident, len(a.incidents))
	for i, inc := range a.incidents {
		out[i] = *inc
		out[i].Alerts = append([]Alert(nil), inc.Alerts...)
		out[i].Entities = append([]int64(nil), inc.Entities...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.ChainLen != b.ChainLen {
			return a.ChainLen > b.ChainLen
		}
		if a.ChainScore != b.ChainScore {
			return a.ChainScore > b.ChainScore
		}
		if a.FirstUS != b.FirstUS {
			return a.FirstUS < b.FirstUS
		}
		return a.ID < b.ID
	})
	return out
}

// Analyze is the one-shot entry: a single tactical round over every event
// of the snapshot, returning the ranked incidents. The CLI's batch mode
// uses it; live sessions drive an Analyzer per sealed batch instead.
func Analyze(snap *engine.Snapshot, cfg Config) []Incident {
	a := NewAnalyzer(cfg)
	a.Round(snap, 1)
	return a.Ranked()
}

// AnalyzeOn is Analyze over an abstract source (a sharded store's global
// snapshot, typically).
func AnalyzeOn(src Source, cfg Config) []Incident {
	a := NewAnalyzer(cfg)
	a.RoundOn(src, 1)
	return a.Ranked()
}

// MarshalIncidents renders ranked incidents as indented JSON — the
// byte-stable form the golden tests pin and /v1/incidents serves.
func MarshalIncidents(incs []Incident) ([]byte, error) {
	return json.MarshalIndent(incs, "", "  ")
}

func snapEntity(snap *engine.Snapshot, id int64) *audit.Entity {
	if id < 1 || id > int64(len(snap.Entities)) {
		return nil
	}
	return snap.Entities[id-1]
}

// entityName resolves an entity's default display attribute (exename for
// processes, path for files, dstip for connections).
func entityName(e *audit.Entity) string {
	if e == nil {
		return ""
	}
	if v, ok := e.Attr(audit.DefaultAttr(e.Kind)); ok {
		return v
	}
	return ""
}
