package relational

import (
	"fmt"
	"testing"
)

// floorStmt is "SELECT id FROM items WHERE id >= ?int1" with a prunable
// parameter floor.
func floorStmt() *SelectStmt {
	return &SelectStmt{
		Select: []SelectItem{{Expr: ColRef{Qualifier: "i", Column: "id"}}},
		From:   []TableRef{{Table: "items", Alias: "i"}},
		Where:  BinOp{Op: ">=", L: ColRef{Qualifier: "i", Column: "id"}, R: Param{Slot: 1, Prune: true}},
		Limit:  -1,
	}
}

// TestScanFloorMatchesFullScan pins the scan-floor optimization's safety
// property: a floored scan over an ascending column returns exactly what
// the full scan + filter returns, on every batch-size boundary, and the
// executor reports the narrowed scan in its stats.
func TestScanFloorMatchesFullScan(t *testing.T) {
	origBS := BatchSize
	defer func() { BatchSize = origBS }()
	for _, bs := range []int{1, 3, 1024} {
		BatchSize = bs
		db := paramTestDB(t, 50) // ids 1..50 ascending, no index needed
		pr, err := db.Prepare(floorStmt())
		if err != nil {
			t.Fatal(err)
		}
		for _, floor := range []int64{0, 1, 25, 50, 51} {
			var p Params
			p.Ints[1] = floor
			rs, stats, err := pr.Query(&p)
			if err != nil {
				t.Fatal(err)
			}
			want := 0
			for id := int64(1); id <= 50; id++ {
				if floor == 0 || id >= floor {
					want++
				}
			}
			if rs.Len() != want {
				t.Fatalf("bs=%d floor=%d: %d rows, want %d", bs, floor, rs.Len(), want)
			}
			// An active floor over the sorted id column must narrow the
			// scan: rows visited == rows returned (plus nothing).
			if floor > 1 && stats.RowsScanned != want {
				t.Fatalf("bs=%d floor=%d: scanned %d rows, want the %d in-range rows only",
					bs, floor, stats.RowsScanned, want)
			}
		}
	}
}

// TestScanFloorUnsortedFallsBack pins that an out-of-order append disables
// the binary-searched start (correctness keeps coming from the filter).
func TestScanFloorUnsortedFallsBack(t *testing.T) {
	db := paramTestDB(t, 10)
	tbl := db.Table("items")
	// Append an out-of-order id: the column is no longer ascending.
	if err := tbl.Insert([]Value{Int(5), Int(990), Str("late")}); err != nil {
		t.Fatal(err)
	}
	pr, err := db.Prepare(floorStmt())
	if err != nil {
		t.Fatal(err)
	}
	var p Params
	p.Ints[1] = 7
	rs, stats, err := pr.Query(&p)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 4 { // 7, 8, 9, 10 (the late 5 is below the floor)
		t.Fatalf("rows = %d, want 4", rs.Len())
	}
	if stats.RowsScanned != 11 {
		t.Fatalf("unsorted column must full-scan: scanned %d of 11", stats.RowsScanned)
	}
}

// TestOptionalParamIDs pins the Optional semantics: an unbound list
// constrains nothing (where a non-optional unbound list matches nothing),
// and the planned index access falls back to the level's other choice.
func TestOptionalParamIDs(t *testing.T) {
	db := paramTestDB(t, 20)
	stmt := &SelectStmt{
		Select: []SelectItem{{Expr: ColRef{Qualifier: "i", Column: "id"}}},
		From:   []TableRef{{Table: "items", Alias: "i"}},
		Where:  ParamIDs{E: ColRef{Qualifier: "i", Column: "id"}, Slot: 0, Optional: true},
		Limit:  -1,
	}
	pr, err := db.Prepare(stmt)
	if err != nil {
		t.Fatal(err)
	}
	// Unbound: every row.
	rs, _, err := pr.Query(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 20 {
		t.Fatalf("unbound optional list: %d rows, want all 20", rs.Len())
	}
	// Bound: the listed rows, served by the index multi-probe.
	var p Params
	p.Lists[0] = []int64{3, 11, 19}
	rs, stats, err := pr.Query(&p)
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(idsOf(t, rs)); got != "[3 11 19]" {
		t.Fatalf("bound optional list: %s", got)
	}
	if stats.IndexLookups != 3 {
		t.Fatalf("bound list should multi-probe the id index: %d lookups", stats.IndexLookups)
	}
}

// TestPrunedParamFloor pins that a zero-bound Prune parameter deactivates
// its conjunct — rows that would fail "v >= 0" only because v is NULL
// still appear, exactly as if the statement had no floor at all.
func TestPrunedParamFloor(t *testing.T) {
	db := paramTestDB(t, 6) // v is NULL at id 3
	stmt := &SelectStmt{
		Select: []SelectItem{{Expr: ColRef{Qualifier: "i", Column: "id"}}},
		From:   []TableRef{{Table: "items", Alias: "i"}},
		Where:  BinOp{Op: ">=", L: ColRef{Qualifier: "i", Column: "v"}, R: Param{Slot: 1, Prune: true}},
		Limit:  -1,
	}
	pr, err := db.Prepare(stmt)
	if err != nil {
		t.Fatal(err)
	}
	rs, _, err := pr.Query(nil) // floor unbound -> conjunct pruned
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 6 {
		t.Fatalf("pruned floor must admit every row (NULLs included): %d of 6", rs.Len())
	}
	var p Params
	p.Ints[1] = 25
	rs, _, err = pr.Query(&p) // bound -> v >= 25 (drops NULL and v=10,20)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 3 {
		t.Fatalf("bound floor: %d rows, want 3", rs.Len())
	}
}
