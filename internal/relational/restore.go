package relational

// Restore is the segment-recovery fast path: a table adopts fully built
// column vectors instead of replaying appendRow per row, and indexes are
// rebuilt with counting sort over one shared arena instead of per-key
// append growth. The adopted slices are trimmed to cap == len, so the
// first post-restore append reallocates privately and the decoded
// buffers (which a sibling store may share) are never mutated.

import "fmt"

// RestoredColumn carries one column's restored storage. Exactly one of
// Ints / Strs / (Codes+Dict) is set according to the schema column kind
// and encoding; Nulls, when non-nil, is the packed null bitmap (bit i
// set = row i NULL) and must be private to this table — bitmaps are
// mutated in place by appends and rollbacks, never shared.
type RestoredColumn struct {
	Ints  []int64
	Strs  []string
	Codes []int32
	Dict  []string
	Nulls []uint64
}

// RestoreColumns installs rows prebuilt rows into an empty table,
// adopting the given column vectors. The table must have been created
// with NewTable (and DictEncode where the restored column carries
// codes) and hold no rows.
func (t *Table) RestoreColumns(rows int, cols []RestoredColumn) error {
	if t.rows != 0 {
		return fmt.Errorf("relational: restore into non-empty table %s", t.Name)
	}
	if len(cols) != len(t.Schema) {
		return fmt.Errorf("relational: restore %s: %d columns, schema has %d", t.Name, len(cols), len(t.Schema))
	}
	for i := range cols {
		rc := &cols[i]
		c := &t.cols[i]
		name := t.Schema[i].Name
		switch {
		case c.kind == KindInt:
			if len(rc.Ints) != rows {
				return fmt.Errorf("relational: restore %s.%s: %d ints for %d rows", t.Name, name, len(rc.Ints), rows)
			}
		case c.dict != nil:
			if len(rc.Codes) != rows {
				return fmt.Errorf("relational: restore %s.%s: %d codes for %d rows", t.Name, name, len(rc.Codes), rows)
			}
			for _, code := range rc.Codes {
				if code < 0 || int(code) >= len(rc.Dict) {
					return fmt.Errorf("relational: restore %s.%s: code %d outside dictionary of %d", t.Name, name, code, len(rc.Dict))
				}
			}
		default:
			if len(rc.Strs) != rows {
				return fmt.Errorf("relational: restore %s.%s: %d strings for %d rows", t.Name, name, len(rc.Strs), rows)
			}
		}
		if rc.Nulls != nil && len(rc.Nulls) < (rows+63)/64 {
			return fmt.Errorf("relational: restore %s.%s: null bitmap covers %d rows, need %d", t.Name, name, len(rc.Nulls)*64, rows)
		}
	}
	for i := range cols {
		rc := &cols[i]
		c := &t.cols[i]
		switch {
		case c.kind == KindInt:
			c.ints = rc.Ints[:rows:rows]
			for p := 1; p < rows; p++ {
				if c.ints[p] < c.ints[p-1] {
					c.unsorted = true
					break
				}
			}
		case c.dict != nil:
			c.codes = rc.Codes[:rows:rows]
			c.dict.vals = rc.Dict[:len(rc.Dict):len(rc.Dict)]
			c.dict.code = make(map[string]int32, len(rc.Dict))
			for code, s := range rc.Dict {
				c.dict.code[s] = int32(code)
			}
		default:
			c.strs = rc.Strs[:rows:rows]
		}
		if rc.Nulls != nil {
			c.null = bitmap(rc.Nulls)
		}
	}
	t.rows = rows
	if t.db != nil {
		t.db.invalidatePlans()
	}
	return nil
}

// RestoreIndexInt builds the hash index on an int column whose non-null
// values all lie in [1, maxKey] (dense IDs) with a two-pass counting
// sort: per-key position lists are carved from one arena, so the build
// does one large allocation instead of one per distinct key. Falls back
// to CreateIndex when the column has NULLs or out-of-range values.
func (t *Table) RestoreIndexInt(column string, maxKey int64) error {
	colIdx := t.Schema.IndexOf(column)
	if colIdx < 0 {
		return fmt.Errorf("relational: table %s has no column %s", t.Name, column)
	}
	c := &t.cols[colIdx]
	if c.kind != KindInt {
		return fmt.Errorf("relational: column %s.%s is not an int column", t.Name, column)
	}
	if len(c.null) > 0 || maxKey < 1 {
		return t.CreateIndex(column)
	}
	for _, v := range c.ints {
		if v < 1 || v > maxKey {
			return t.CreateIndex(column)
		}
	}
	if t.db != nil {
		t.db.invalidatePlans()
	}
	counts := make([]int32, maxKey+1)
	for _, v := range c.ints {
		counts[v]++
	}
	arena := make([]int32, len(c.ints))
	dense := make([][]int32, maxKey+1)
	// Carve each key's slot (cap == final length, so later appends grow
	// privately) and fill positions in ascending row order — two array
	// passes, no hashing at all. Keys appended after the restore that
	// exceed maxKey overflow into the (empty) hash map.
	starts := make([]int32, maxKey+1)
	var off int32
	for k := int64(1); k <= maxKey; k++ {
		starts[k] = off
		if n := counts[k]; n > 0 {
			dense[k] = arena[off : off : off+n]
			off += n
		}
	}
	for pos, v := range c.ints {
		l := dense[v]
		dense[v] = l[:len(l)+1]
		arena[starts[v]] = int32(pos)
		starts[v]++
	}
	t.indexes[colIdx].Store(&hashIndex{col: colIdx, kind: KindInt, ints: make(map[int64][]int32), dense: dense})
	t.dropLazy(column)
	return nil
}

// RestoreIndexDict builds the hash index on a NULL-free
// dictionary-encoded column by counting per code, sharing one arena
// across the per-value lists. Falls back to CreateIndex when the column
// has NULLs or is not dictionary-encoded.
func (t *Table) RestoreIndexDict(column string) error {
	colIdx := t.Schema.IndexOf(column)
	if colIdx < 0 {
		return fmt.Errorf("relational: table %s has no column %s", t.Name, column)
	}
	c := &t.cols[colIdx]
	if c.dict == nil || len(c.null) > 0 {
		return t.CreateIndex(column)
	}
	if t.db != nil {
		t.db.invalidatePlans()
	}
	nCodes := len(c.dict.vals)
	counts := make([]int32, nCodes)
	for _, code := range c.codes {
		counts[code]++
	}
	arena := make([]int32, len(c.codes))
	ix := &hashIndex{col: colIdx, kind: KindString, strs: make(map[string][]int32, nCodes)}
	starts := make([]int32, nCodes)
	lists := make([][]int32, nCodes)
	var off int32
	for code := 0; code < nCodes; code++ {
		starts[code] = off
		if n := counts[code]; n > 0 {
			lists[code] = arena[off : off : off+n]
			off += n
		}
	}
	for pos, code := range c.codes {
		lists[code] = lists[code][:len(lists[code])+1]
		arena[starts[code]] = int32(pos)
		starts[code]++
	}
	for code, l := range lists {
		if len(l) > 0 {
			ix.strs[c.dict.vals[code]] = l
		}
	}
	t.indexes[colIdx].Store(ix)
	t.dropLazy(column)
	return nil
}
