package relational

// Adaptive hash-join fallback for deep unindexed joins. A nested-loop
// level whose join-equality column has no hash index degrades to a full
// inner scan per outer binding — O(outer x inner). When the planner finds
// an equality conjunct "inner.col = <earlier-level expression>" on such a
// level, it records a hashJoin candidate; execution stays on the scan
// path until the level has been entered HashJoinMinProbes times over an
// inner table of at least HashJoinMinRows rows, then builds a transient
// hash table over the join column once and probes it for every further
// outer binding.
//
// The fallback is strictly an access-path change: the probed positions
// still run through every level predicate (including the join conjunct
// itself), so filter semantics are untouched, and a bucket's positions
// are appended in row order, so emitted rows keep the exact order of the
// serial scan. Probes happen only when the runtime key's kind equals the
// column kind; mixed-kind keys (which the generic evaluator compares with
// numeric-string leniency) fall back to the scan for that binding.

var (
	// HashJoinMinRows is the minimum inner-table size before a level
	// builds a join hash table; smaller tables scan faster than they hash.
	HashJoinMinRows = 2048
	// HashJoinMinProbes is how many times a level must be entered in one
	// execution before the build triggers: the build costs a full pass, so
	// it must be amortized over many outer bindings.
	HashJoinMinProbes = 16
)

// hashJoin is one level's compiled join-equality candidate.
type hashJoin struct {
	col   int
	kind  Kind
	keyFn evalFn
}

// hashJoinTable maps the inner column's values to their row positions
// (ascending within each bucket). Exactly one map is set, per the column
// kind.
type hashJoinTable struct {
	ints map[int64][]int32
	strs map[string][]int32
}

// planHashJoin finds an equality conjunct usable as a hash-join key on a
// full-scanned level: "lvl.col = expr" (either orientation) where expr
// reads only earlier levels. Conjuncts with a runtime activity gate are
// skipped — probing an inactive equality would wrongly constrain the
// level.
func (b *binding) planHashJoin(lvl int, preds []Expr) *hashJoin {
	if lvl == 0 {
		return nil // level 0 runs once; there is nothing to amortize
	}
	for _, e := range preds {
		bin, ok := e.(BinOp)
		if !ok || bin.Op != "=" || pruneGate(e) != nil {
			continue
		}
		try := func(colSide, keySide Expr) *hashJoin {
			c, ok := colSide.(ColRef)
			if !ok {
				return nil
			}
			clvl, ccol, err := b.resolve(c)
			if err != nil || clvl != lvl {
				return nil
			}
			kind := b.tables[lvl].Schema[ccol].Kind
			if kind != KindInt && kind != KindString {
				return nil
			}
			keyLvl, err := b.deepestLevel(keySide)
			if err != nil || keyLvl >= lvl {
				return nil // the key must read only earlier levels
			}
			if hasParamIDs(keySide) {
				return nil // evaluates to a membership bool, not a key
			}
			keyFn, err := b.compileEval(keySide)
			if err != nil {
				return nil
			}
			return &hashJoin{col: ccol, kind: kind, keyFn: keyFn}
		}
		if hj := try(bin.L, bin.R); hj != nil {
			return hj
		}
		if hj := try(bin.R, bin.L); hj != nil {
			return hj
		}
	}
	return nil
}

func hasParamIDs(e Expr) bool {
	switch v := e.(type) {
	case ParamIDs:
		return true
	case BinOp:
		return hasParamIDs(v.L) || hasParamIDs(v.R)
	case UnOp:
		return hasParamIDs(v.E)
	case InList:
		if hasParamIDs(v.E) {
			return true
		}
		for _, x := range v.Vals {
			if hasParamIDs(x) {
				return true
			}
		}
	}
	return false
}

// hashJoinLevel tries to serve level lvl with a hash probe. used reports
// whether the level was fully handled (the caller skips the scan path);
// used == false with a nil error means the scan path must run — the
// thresholds have not tripped, or this binding's key kind does not match
// the column (generic equality leniency applies only on the scan path).
func (p *plan) hashJoinLevel(st *execState, sink *rowSink, lvl int, hj *hashJoin) (bool, error) {
	ht := st.hjTabs[lvl]
	if ht == nil {
		st.visits[lvl]++
		if int(st.visits[lvl]) < HashJoinMinProbes {
			return false, nil
		}
		tbl := st.tabs[lvl]
		if tbl.Len() < HashJoinMinRows {
			return false, nil
		}
		if len(p.floors[lvl]) > 0 && p.scanStart(&st.params, lvl) > 0 {
			// An active scan floor already narrows the level to a suffix
			// (delta evaluation); hashing the whole history would cost more
			// than every remaining suffix scan combined.
			return false, nil
		}
		ht = buildHashJoinTable(tbl, hj)
		st.hjTabs[lvl] = ht
		st.stats.HashJoinBuilds++
		st.stats.RowsScanned += tbl.Len() // the build's one full pass
	}
	key, err := hj.keyFn(st)
	if err != nil {
		return true, err
	}
	var pos []int32
	switch hj.kind {
	case KindInt:
		if key.K != KindInt {
			if key.K == KindNull {
				return true, nil // NULL equals nothing; no rows to visit
			}
			return false, nil // mixed kinds: scan keeps Equal's leniency
		}
		pos = ht.ints[key.I]
	default:
		if key.K != KindString {
			if key.K == KindNull {
				return true, nil
			}
			return false, nil
		}
		pos = ht.strs[key.S]
	}
	st.stats.IndexLookups++
	st.stats.RowsScanned += len(pos)
	if len(pos) == 0 {
		return true, nil
	}
	return true, p.feedPositions(st, sink, lvl, pos)
}

// buildHashJoinTable makes one pass over the join column, bucketing row
// positions by value (NULL rows match no equality and are skipped).
// Dictionary-encoded columns bucket by code first — one small-map insert
// per row and one decode per distinct value, not per row.
func buildHashJoinTable(tbl *Table, hj *hashJoin) *hashJoinTable {
	n := tbl.Len()
	c := &tbl.cols[hj.col]
	ht := &hashJoinTable{}
	isNull := func(r int) bool { return len(c.null) > r>>6 && c.null.get(r) }
	if hj.kind == KindInt {
		ht.ints = make(map[int64][]int32, n/2)
		for r := 0; r < n; r++ {
			if isNull(r) {
				continue
			}
			k := c.ints[r]
			ht.ints[k] = append(ht.ints[k], int32(r))
		}
		return ht
	}
	if c.dict != nil {
		vals := c.dictVals()
		byCode := make(map[int32][]int32, 64)
		for r := 0; r < n; r++ {
			if isNull(r) {
				continue
			}
			code := c.codes[r]
			byCode[code] = append(byCode[code], int32(r))
		}
		ht.strs = make(map[string][]int32, len(byCode))
		for code, pos := range byCode {
			ht.strs[vals[code]] = pos
		}
		return ht
	}
	ht.strs = make(map[string][]int32, n/2)
	for r := 0; r < n; r++ {
		if isNull(r) {
			continue
		}
		s := c.strs[r]
		ht.strs[s] = append(ht.strs[s], int32(r))
	}
	return ht
}
