package relational

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"/bin/tar", "%/bin/tar%", true},
		{"/usr/bin/tar", "%/bin/tar%", true},
		{"/bin/tar.bak", "%/bin/tar%", true},
		{"/bin/ta", "%/bin/tar%", false},
		{"hello", "hello", true},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false},
		{"", "%", true},
		{"", "", true},
		{"x", "", false},
		{"abc", "%", true},
		{"abc", "a%", true},
		{"abc", "%c", true},
		{"abc", "%b%", true},
		{"abc", "a%c", true},
		{"ac", "a%c", true},
		{"abbbc", "a%c", true},
		{"abc", "a_c", true},
		{"192.168.29.128", "192.168.29.128", true},
		{"192.168.29.128", "192.168.%", true},
		{"/tmp/upload.tar.bz2", "%upload.tar%", true},
		{"aaa", "%a%a%a%", true},
		{"aa", "%a%a%a%", false},
	}
	for _, c := range cases {
		if got := Like(c.s, c.p); got != c.want {
			t.Errorf("Like(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

// Property: a pattern with the string itself always matches; '%'+s+'%'
// matches any superstring.
func TestLikeProperty(t *testing.T) {
	sanitize := func(s string) string {
		return strings.Map(func(r rune) rune {
			if r == '%' || r == '_' {
				return 'x'
			}
			if r < 0x20 || r > 0x7e {
				return -1
			}
			return r
		}, s)
	}
	f := func(a, b, c string) bool {
		mid := sanitize(b)
		full := sanitize(a) + mid + sanitize(c)
		return Like(mid, mid) && Like(full, "%"+mid+"%")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestValueEqual(t *testing.T) {
	if !Int(5).Equal(Int(5)) || Int(5).Equal(Int(6)) {
		t.Error("int equality broken")
	}
	if !Str("a").Equal(Str("a")) || Str("a").Equal(Str("b")) {
		t.Error("string equality broken")
	}
	if Null().Equal(Null()) {
		t.Error("NULL = NULL must be false (SQL semantics)")
	}
	if !Str("42").Equal(Int(42)) || !Int(42).Equal(Str("42")) {
		t.Error("numeric-string leniency broken")
	}
	if Str("4x2").Equal(Int(42)) {
		t.Error("non-numeric string must not equal int")
	}
}

func TestValueCompare(t *testing.T) {
	if c, _ := Int(1).Compare(Int(2)); c != -1 {
		t.Error("1 < 2")
	}
	if c, _ := Str("b").Compare(Str("a")); c != 1 {
		t.Error("b > a")
	}
	if c, _ := Null().Compare(Int(0)); c != -1 {
		t.Error("NULL sorts first")
	}
	if _, err := Int(1).Compare(Str("a")); err == nil {
		t.Error("cross-kind compare must error")
	}
}

func TestValueTruthyAndString(t *testing.T) {
	if Null().Truthy() || Int(0).Truthy() || Str("").Truthy() {
		t.Error("falsy values misjudged")
	}
	if !Int(1).Truthy() || !Str("x").Truthy() {
		t.Error("truthy values misjudged")
	}
	if Int(42).String() != "42" || Str("a").String() != "a" || Null().String() != "NULL" {
		t.Error("String rendering wrong")
	}
	if Bool(true).I != 1 || Bool(false).I != 0 {
		t.Error("Bool wrong")
	}
}

func TestValueKeyDisambiguates(t *testing.T) {
	if Int(42).Key() == Str("42").Key() {
		t.Error("int and string keys must differ")
	}
	if Null().Key() == Str("").Key() {
		t.Error("null and empty string keys must differ")
	}
}
