package relational

// Snapshot-isolated reads over append-only tables.
//
// The storage layer has exactly one writer (the engine's AppendBatch) and
// many concurrent readers (hunts pinned to a published snapshot). Because
// tables are append-only — rows are only ever added at the tail, and the
// crash-consistency rollback only ever removes rows the snapshot never
// covered — a snapshot does not copy row data. Capturing a table copies
// the Table struct and its []col slice: the column slice *headers* (ints,
// strs, codes, null, dict.vals) are frozen at their capture-time lengths,
// and the writer's subsequent appends either write beyond those lengths or
// reallocate the backing arrays (which preserves the prefix). Either way
// the captured prefix is immutable, so readers touch no memory the writer
// mutates. The remaining shared structures — hash-index maps and the null
// bitmaps' boundary words — are handled separately: index probes from a
// snapshot go through the index's RWMutex and trim positions to the
// snapshot's row count, and bitmap words are written/read atomically.
type Snap struct {
	n    int
	live [maxSnapTables]*Table
	tabs [maxSnapTables]Table
}

// maxSnapTables bounds how many tables one snapshot covers. The engine's
// store has two (entities, events); the headroom is for future schemas.
const maxSnapTables = 4

// Capture fills s with an immutable view of every table in db, taken at
// the current row counts. It must be called from the writer (or otherwise
// mutually excluded with appends); the returned snapshot may then be read
// from any goroutine concurrently with further appends.
func (s *Snap) Capture(db *DB) {
	s.n = 0
	for _, t := range db.tables {
		if s.n == maxSnapTables {
			// More tables than a snapshot can hold: the extras resolve to
			// their live versions (correct only for single-writer reads).
			break
		}
		s.live[s.n] = t
		t.snapInto(&s.tabs[s.n])
		s.n++
	}
}

// Table resolves a live table to its captured copy, or returns the live
// table itself when the snapshot does not cover it.
func (s *Snap) Table(live *Table) *Table {
	for i := 0; i < s.n; i++ {
		if s.live[i] == live {
			return &s.tabs[i]
		}
	}
	return live
}

// Rows returns the captured row count of a live table (its own Len when
// the snapshot does not cover it).
func (s *Snap) Rows(live *Table) int { return s.Table(live).Len() }

// snapInto writes a frozen copy of t into dst. The col structs are copied
// by value — at capture time every column vector's length equals the row
// count, so the copied headers bound exactly the captured rows — and
// dictionary-encoded columns freeze the decode slice (dvals) so snapshot
// reads never touch the live dictionary's growing vals slice or code map.
func (t *Table) snapInto(dst *Table) {
	*dst = *t
	dst.snapshot = true
	dst.cols = make([]col, len(t.cols))
	copy(dst.cols, t.cols)
	for i := range dst.cols {
		c := &dst.cols[i]
		if c.dict != nil {
			c.dvals = c.dict.vals
		}
	}
}
