package relational

import "testing"

func arithDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	tbl, err := db.CreateTable("t", Schema{{Name: "a", Kind: KindInt}, {Name: "b", Kind: KindInt}})
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]Value{
		{Int(10), Int(3)},
		{Int(5), Int(5)},
		{Int(100), Int(1)},
	}
	for _, r := range rows {
		if err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestArithmeticInWhere(t *testing.T) {
	db := arithDB(t)
	rs, err := db.Query("SELECT a FROM t WHERE a - b > 5")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 2 { // 10-3=7, 100-1=99
		t.Fatalf("rows = %d: %v", rs.Len(), rs.Strings())
	}
	rs, err = db.Query("SELECT a FROM t WHERE a + b = 10")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 || rs.Rows[0][0].I != 5 {
		t.Fatalf("got %v", rs.Strings())
	}
}

func TestArithmeticChained(t *testing.T) {
	db := arithDB(t)
	// Left-associative: 100 - 1 - 10 = 89.
	rs, err := db.Query("SELECT a FROM t WHERE a - b - 10 = 89")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 || rs.Rows[0][0].I != 100 {
		t.Fatalf("got %v", rs.Strings())
	}
}

func TestArithmeticInProjection(t *testing.T) {
	db := arithDB(t)
	rs, err := db.Query("SELECT a + b AS total FROM t WHERE a = 10")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 || rs.Rows[0][0].I != 13 {
		t.Fatalf("got %v", rs.Strings())
	}
	if rs.Columns[0] != "total" {
		t.Fatalf("columns = %v", rs.Columns)
	}
}

func TestArithmeticTypeError(t *testing.T) {
	db := NewDB()
	tbl, _ := db.CreateTable("s", Schema{{Name: "x", Kind: KindString}})
	if err := tbl.Insert([]Value{Str("hello")}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("SELECT x FROM s WHERE x + 1 > 0"); err == nil {
		t.Fatal("string arithmetic must fail")
	}
}

func TestEvalExprArithmetic(t *testing.T) {
	resolve := func(c ColRef) (Value, error) { return Int(7), nil }
	v, err := EvalExpr(BinOp{Op: "+", L: ColRef{Column: "x"}, R: Lit{V: Int(3)}}, resolve)
	if err != nil || v.I != 10 {
		t.Fatalf("7+3 = %v, %v", v, err)
	}
	v, err = EvalExpr(BinOp{Op: "-", L: ColRef{Column: "x"}, R: Lit{V: Int(3)}}, resolve)
	if err != nil || v.I != 4 {
		t.Fatalf("7-3 = %v, %v", v, err)
	}
	if _, err := EvalExpr(BinOp{Op: "+", L: Lit{V: Str("a")}, R: Lit{V: Int(1)}}, resolve); err == nil {
		t.Fatal("string + int must fail")
	}
}
