package relational

// DedupRows removes duplicate rows in place, preserving first-seen order.
// Rows are hashed value-wise (FNV-1a over kind, integer, and string
// content) and compared field-wise on collision, so no per-row string key
// is ever built. Both query backends and the TBQL engine's DISTINCT use
// this one helper so duplicate semantics stay identical everywhere.
func DedupRows(rows [][]Value) [][]Value {
	if len(rows) < 2 {
		return rows
	}
	// buckets maps a row hash to indexes into out holding that hash.
	buckets := make(map[uint64][]int32, len(rows))
	out := rows[:0]
	for _, row := range rows {
		h := hashRow(row)
		dup := false
		for _, i := range buckets[h] {
			if rowsEqual(out[i], row) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		buckets[h] = append(buckets[h], int32(len(out)))
		out = append(out, row)
	}
	return out
}

// dedupSet is the streaming form of DedupRows, used by the batch executor
// to drop duplicate rows as they are emitted instead of accumulating them:
// same FNV-1a hashing, same field-wise equality on collision, same
// first-seen-wins order. It indexes into the ResultSet it guards, so a
// surviving row is stored exactly once.
type dedupSet struct {
	rs      *ResultSet
	buckets map[uint64][]int32
}

func newDedupSet(rs *ResultSet) *dedupSet {
	return &dedupSet{rs: rs, buckets: make(map[uint64][]int32)}
}

// seen reports whether row duplicates an already-emitted row; when it does
// not, it records the slot the caller is about to append the row to.
func (d *dedupSet) seen(row []Value) bool {
	h := hashRow(row)
	for _, i := range d.buckets[h] {
		if rowsEqual(d.rs.Rows[i], row) {
			return true
		}
	}
	d.buckets[h] = append(d.buckets[h], int32(len(d.rs.Rows)))
	return false
}

// RowSet is a standalone accumulating row-identity set with the exact
// hash/equality semantics of DedupRows. The standing-query layer uses it
// to deduplicate firings across batches: a binding re-derived by a later
// delta round must not fire twice.
type RowSet struct {
	buckets map[uint64][]int32
	rows    [][]Value
}

// NewRowSet returns an empty set.
func NewRowSet() *RowSet {
	return &RowSet{buckets: make(map[uint64][]int32)}
}

// Add inserts row and reports whether it was new. The row is retained;
// callers must not mutate it afterwards.
func (s *RowSet) Add(row []Value) bool {
	h := hashRow(row)
	for _, i := range s.buckets[h] {
		if rowsEqual(s.rows[i], row) {
			return false
		}
	}
	s.buckets[h] = append(s.buckets[h], int32(len(s.rows)))
	s.rows = append(s.rows, row)
	return true
}

// Len returns the number of distinct rows added.
func (s *RowSet) Len() int { return len(s.rows) }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func hashRow(row []Value) uint64 {
	h := uint64(fnvOffset)
	for _, v := range row {
		h ^= uint64(v.K)
		h *= fnvPrime
		h ^= uint64(v.I)
		h *= fnvPrime
		for i := 0; i < len(v.S); i++ {
			h ^= uint64(v.S[i])
			h *= fnvPrime
		}
	}
	return h
}

// rowsEqual is strict structural equality (NULLs compare equal to NULLs,
// matching the previous key-string dedup semantics).
func rowsEqual(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
