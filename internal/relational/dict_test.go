package relational

import (
	"fmt"
	"math/rand"
	"testing"
)

// buildDictPair creates two identical databases — one with the "op" column
// dictionary-encoded, one plain — loaded with the same pseudo-random rows
// (including NULLs) and an index on op in both.
func buildDictPair(t *testing.T, rows int) (dictDB, plainDB *DB) {
	t.Helper()
	ops := []string{"read", "write", "execute", "connect", "send", "receive"}
	schema := Schema{
		{Name: "id", Kind: KindInt},
		{Name: "op", Kind: KindString},
		{Name: "amount", Kind: KindInt},
	}
	build := func(dict bool) *DB {
		db := NewDB()
		tbl, err := db.CreateTable("events", schema)
		if err != nil {
			t.Fatal(err)
		}
		if dict {
			if err := tbl.DictEncode("op"); err != nil {
				t.Fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < rows; i++ {
			op := Str(ops[rng.Intn(len(ops))])
			if rng.Intn(17) == 0 {
				op = Null()
			}
			if err := tbl.Insert([]Value{Int(int64(i)), op, Int(rng.Int63n(1000))}); err != nil {
				t.Fatal(err)
			}
		}
		if err := tbl.CreateIndex("op"); err != nil {
			t.Fatal(err)
		}
		return db
	}
	return build(true), build(false)
}

// TestDictEncodedColumnMatchesPlain runs every predicate shape the
// vectorized executor specializes over both encodings and demands
// identical results — the dictionary must be invisible to semantics.
func TestDictEncodedColumnMatchesPlain(t *testing.T) {
	dictDB, plainDB := buildDictPair(t, 3000)
	queries := []string{
		"SELECT id, op FROM events WHERE op = 'read'",
		"SELECT id, op FROM events WHERE op = 'no_such_op'",
		"SELECT id, op FROM events WHERE op <> 'write'",
		"SELECT id, op FROM events WHERE op <> 'no_such_op'",
		"SELECT id, op FROM events WHERE op LIKE 're%'",
		"SELECT id, op FROM events WHERE op LIKE '%ec%'",
		"SELECT id, op FROM events WHERE op IN ('read', 'send')",
		"SELECT id, op FROM events WHERE op NOT IN ('read', 'send')",
		"SELECT id, op FROM events WHERE op < 'read'",
		"SELECT id, op FROM events WHERE op <= 'read'",
		"SELECT id, op FROM events WHERE op > 'read'",
		"SELECT id, op FROM events WHERE op >= 'read'",
		"SELECT id, op FROM events WHERE op = 'read' AND amount > 500",
		"SELECT DISTINCT op FROM events WHERE op LIKE '%e%' ORDER BY op",
		"SELECT op, amount FROM events WHERE amount < 10",
	}
	for _, q := range queries {
		want, err := plainDB.Query(q)
		if err != nil {
			t.Fatalf("%s (plain): %v", q, err)
		}
		got, err := dictDB.Query(q)
		if err != nil {
			t.Fatalf("%s (dict): %v", q, err)
		}
		if fmt.Sprint(got.Strings()) != fmt.Sprint(want.Strings()) {
			t.Errorf("%s:\n dict  %d rows %v\n plain %d rows %v",
				q, got.Len(), got.Strings(), want.Len(), want.Strings())
		}
	}
}

// TestDictEncodedAppendGrowsDictionary: values first seen after plans are
// cached must still match — the kernels resolve codes and code tables at
// filter time, not plan time.
func TestDictEncodedAppendGrowsDictionary(t *testing.T) {
	db := NewDB()
	tbl, err := db.CreateTable("events", Schema{
		{Name: "id", Kind: KindInt},
		{Name: "op", Kind: KindString},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.DictEncode("op"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert([]Value{Int(1), Str("read")}); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT id FROM events WHERE op = 'rename'"
	rs, err := db.Query(q) // caches the plan with 'rename' unseen
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 0 {
		t.Fatalf("unexpected rows: %v", rs.Strings())
	}
	if err := tbl.Insert([]Value{Int(2), Str("rename")}); err != nil {
		t.Fatal(err)
	}
	rs, err = db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 || rs.Rows[0][0].I != 2 {
		t.Fatalf("cached plan missed a newly interned dictionary value: %v", rs.Strings())
	}
	if !tbl.DictEncoded("op") || tbl.DictEncoded("id") {
		t.Fatal("DictEncoded misreports")
	}
}

// TestDictEncodeRejectsMisuse pins the API contract: int columns and
// non-empty tables cannot be dictionary-encoded.
func TestDictEncodeRejectsMisuse(t *testing.T) {
	tbl := NewTable("t", Schema{{Name: "n", Kind: KindInt}, {Name: "s", Kind: KindString}})
	if err := tbl.DictEncode("n"); err == nil {
		t.Fatal("int column must be rejected")
	}
	if err := tbl.DictEncode("missing"); err == nil {
		t.Fatal("unknown column must be rejected")
	}
	if err := tbl.Insert([]Value{Int(1), Str("x")}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.DictEncode("s"); err == nil {
		t.Fatal("non-empty table must be rejected")
	}
}
