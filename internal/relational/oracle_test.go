package relational

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestExecutorAgainstOracle cross-checks the planner/executor (with its
// predicate pushdown and index probes) against a brute-force evaluator on
// randomly generated single-table predicates: both must select exactly the
// same rows regardless of index availability.
func TestExecutorAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	names := []string{"/bin/tar", "/bin/cp", "/usr/bin/vim", "/tmp/x", "/tmp/y", "/etc/passwd"}

	build := func(indexed bool) *DB {
		db := NewDB()
		tbl, err := db.CreateTable("rows", Schema{
			{Name: "id", Kind: KindInt},
			{Name: "name", Kind: KindString},
			{Name: "size", Kind: KindInt},
		})
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(5))
		for i := 0; i < 300; i++ {
			if err := tbl.Insert([]Value{
				Int(int64(i)),
				Str(names[r.Intn(len(names))]),
				Int(int64(r.Intn(100))),
			}); err != nil {
				t.Fatal(err)
			}
		}
		if indexed {
			for _, col := range []string{"id", "name"} {
				if err := tbl.CreateIndex(col); err != nil {
					t.Fatal(err)
				}
			}
		}
		return db
	}
	indexed := build(true)
	plain := build(false)

	// Random predicate generator over (id, name, size).
	var genPred func(depth int) string
	genPred = func(depth int) string {
		if depth == 0 || rng.Intn(3) == 0 {
			switch rng.Intn(6) {
			case 0:
				return fmt.Sprintf("id = %d", rng.Intn(320))
			case 1:
				return fmt.Sprintf("size %s %d", []string{"<", "<=", ">", ">="}[rng.Intn(4)], rng.Intn(100))
			case 2:
				return fmt.Sprintf("name = '%s'", names[rng.Intn(len(names))])
			case 3:
				return fmt.Sprintf("name LIKE '%%%s%%'", []string{"bin", "tmp", "tar", "x"}[rng.Intn(4)])
			case 4:
				return fmt.Sprintf("id IN (%d, %d, %d)", rng.Intn(300), rng.Intn(300), rng.Intn(300))
			default:
				return fmt.Sprintf("NOT name = '%s'", names[rng.Intn(len(names))])
			}
		}
		op := []string{"AND", "OR"}[rng.Intn(2)]
		return fmt.Sprintf("(%s %s %s)", genPred(depth-1), op, genPred(depth-1))
	}

	for i := 0; i < 250; i++ {
		pred := genPred(2)
		sql := "SELECT id FROM rows WHERE " + pred + " ORDER BY id"
		a, err := indexed.Query(sql)
		if err != nil {
			t.Fatalf("indexed: %v\n%s", err, sql)
		}
		b, err := plain.Query(sql)
		if err != nil {
			t.Fatalf("plain: %v\n%s", err, sql)
		}
		as, bs := a.Strings(), b.Strings()
		if len(as) != len(bs) {
			t.Fatalf("index/scan disagree (%d vs %d rows) for:\n%s", len(as), len(bs), sql)
		}
		for j := range as {
			if as[j][0] != bs[j][0] {
				t.Fatalf("row %d differs (%s vs %s) for:\n%s", j, as[j][0], bs[j][0], sql)
			}
		}
	}
}

// TestJoinAgainstOracle cross-checks a two-table join against nested-loop
// brute force computed in the test.
func TestJoinAgainstOracle(t *testing.T) {
	db := NewDB()
	left, _ := db.CreateTable("l", Schema{{Name: "id", Kind: KindInt}, {Name: "k", Kind: KindInt}})
	right, _ := db.CreateTable("r", Schema{{Name: "k", Kind: KindInt}, {Name: "v", Kind: KindString}})
	rng := rand.New(rand.NewSource(99))
	type lrow struct{ id, k int64 }
	type rrow struct {
		k int64
		v string
	}
	var ls []lrow
	var rs []rrow
	for i := 0; i < 80; i++ {
		lr := lrow{int64(i), int64(rng.Intn(10))}
		ls = append(ls, lr)
		left.Insert([]Value{Int(lr.id), Int(lr.k)})
	}
	for i := 0; i < 40; i++ {
		rr := rrow{int64(rng.Intn(10)), fmt.Sprintf("v%d", rng.Intn(5))}
		rs = append(rs, rr)
		right.Insert([]Value{Int(rr.k), Str(rr.v)})
	}
	if err := right.CreateIndex("k"); err != nil {
		t.Fatal(err)
	}

	got, err := db.Query("SELECT l.id, r.v FROM l, r WHERE l.k = r.k AND l.id < 40 ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, lr := range ls {
		if lr.id >= 40 {
			continue
		}
		for _, rr := range rs {
			if lr.k == rr.k {
				want++
			}
		}
	}
	if got.Len() != want {
		t.Fatalf("join rows = %d, oracle = %d", got.Len(), want)
	}
}
