package relational

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
)

// parseCalls counts ParseSelect invocations. The TBQL engine's execution
// paths compile statement ASTs directly and must never come through the
// parser; a test pins that invariant by sampling this counter.
var parseCalls atomic.Uint64

// ParseCalls reports how many times ParseSelect has run in this process.
func ParseCalls() uint64 { return parseCalls.Load() }

// ParseSelect parses a SELECT statement in the supported SQL subset:
//
//	SELECT [DISTINCT] item, ... | *
//	FROM table [alias] (, table [alias])*
//	     (JOIN table [alias] ON expr)*
//	[WHERE expr]
//	[ORDER BY expr [ASC|DESC], ...]
//	[LIMIT n]
//
// Expressions support =, <>, !=, <, <=, >, >=, LIKE, NOT LIKE, IN, NOT IN,
// AND, OR, NOT, parentheses, integer and 'string' literals, and
// alias.column references.
func ParseSelect(src string) (*SelectStmt, error) {
	parseCalls.Add(1)
	toks, err := lexSQL(src)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("sql: unexpected %q after statement", p.cur().text)
	}
	return stmt, nil
}

type sqlParser struct {
	toks []token
	i    int
}

func (p *sqlParser) cur() token  { return p.toks[p.i] }
func (p *sqlParser) atEOF() bool { return p.cur().kind == tokEOF }
func (p *sqlParser) advance()    { p.i++ }

// kw reports whether the current token is the given keyword (case-
// insensitive) and consumes it if so.
func (p *sqlParser) kw(word string) bool {
	t := p.cur()
	if t.kind == tokIdent && strings.EqualFold(t.text, word) {
		p.advance()
		return true
	}
	return false
}

func (p *sqlParser) peekKw(word string) bool {
	t := p.cur()
	return t.kind == tokIdent && strings.EqualFold(t.text, word)
}

func (p *sqlParser) expectKw(word string) error {
	if !p.kw(word) {
		return fmt.Errorf("sql: expected %s, found %q at %d", strings.ToUpper(word), p.cur().text, p.cur().pos)
	}
	return nil
}

func (p *sqlParser) sym(s string) bool {
	t := p.cur()
	if t.kind == tokSymbol && t.text == s {
		p.advance()
		return true
	}
	return false
}

func (p *sqlParser) expectSym(s string) error {
	if !p.sym(s) {
		return fmt.Errorf("sql: expected %q, found %q at %d", s, p.cur().text, p.cur().pos)
	}
	return nil
}

func (p *sqlParser) ident() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sql: expected identifier, found %q at %d", t.text, t.pos)
	}
	p.advance()
	return t.text, nil
}

var sqlReserved = map[string]bool{
	"select": true, "from": true, "where": true, "join": true, "on": true,
	"order": true, "by": true, "limit": true, "distinct": true, "and": true,
	"or": true, "not": true, "like": true, "in": true, "as": true,
	"asc": true, "desc": true,
}

func (p *sqlParser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKw("select"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	stmt.Distinct = p.kw("distinct")

	// Projection list.
	if p.sym("*") {
		// empty Select means all columns
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.kw("as") {
				name, err := p.ident()
				if err != nil {
					return nil, err
				}
				item.As = name
			}
			stmt.Select = append(stmt.Select, item)
			if !p.sym(",") {
				break
			}
		}
	}

	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, ref)
		if !p.sym(",") {
			break
		}
	}
	for p.kw("join") {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("on"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, Join{Ref: ref, On: on})
	}

	if p.kw("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	if p.peekKw("order") {
		p.advance()
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.kw("desc") {
				item.Desc = true
			} else {
				p.kw("asc")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.sym(",") {
				break
			}
		}
	}
	if p.kw("limit") {
		t := p.cur()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("sql: LIMIT expects a number, found %q", t.text)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, err
		}
		p.advance()
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *sqlParser) parseTableRef() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name, Alias: name}
	p.kw("as")
	t := p.cur()
	if t.kind == tokIdent && !sqlReserved[strings.ToLower(t.text)] {
		ref.Alias = t.text
		p.advance()
	}
	return ref, nil
}

// Expression grammar (precedence low to high): OR, AND, NOT, comparison,
// primary.
func (p *sqlParser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *sqlParser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.kw("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = BinOp{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.kw("and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = BinOp{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) parseNot() (Expr, error) {
	if p.kw("not") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return UnOp{Op: "not", E: e}, nil
	}
	return p.parseComparison()
}

func (p *sqlParser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// NOT LIKE / NOT IN
	if p.kw("not") {
		switch {
		case p.kw("like"):
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return UnOp{Op: "not", E: BinOp{Op: "like", L: l, R: r}}, nil
		case p.kw("in"):
			vals, err := p.parseValueList()
			if err != nil {
				return nil, err
			}
			return InList{E: l, Vals: vals, Negate: true}, nil
		default:
			return nil, fmt.Errorf("sql: expected LIKE or IN after NOT at %d", p.cur().pos)
		}
	}
	if p.kw("like") {
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return BinOp{Op: "like", L: l, R: r}, nil
	}
	if p.kw("in") {
		vals, err := p.parseValueList()
		if err != nil {
			return nil, err
		}
		return InList{E: l, Vals: vals}, nil
	}
	for _, op := range []string{"=", "<>", "!=", "<=", ">=", "<", ">"} {
		if p.sym(op) {
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return BinOp{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *sqlParser) parseAdditive() (Expr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.sym("+"):
			op = "+"
		case p.sym("-"):
			op = "-"
		default:
			return l, nil
		}
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		l = BinOp{Op: op, L: l, R: r}
	}
}

func (p *sqlParser) parseValueList() ([]Expr, error) {
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	var vals []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		vals = append(vals, e)
		if !p.sym(",") {
			break
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return vals, nil
}

func (p *sqlParser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, err
		}
		return Lit{V: Int(n)}, nil
	case tokString:
		p.advance()
		return Lit{V: Str(t.text)}, nil
	case tokIdent:
		if sqlReserved[strings.ToLower(t.text)] {
			return nil, fmt.Errorf("sql: unexpected keyword %q at %d", t.text, t.pos)
		}
		p.advance()
		if p.sym(".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return ColRef{Qualifier: t.text, Column: col}, nil
		}
		return ColRef{Column: t.text}, nil
	case tokSymbol:
		if t.text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("sql: unexpected token %q at %d", t.text, t.pos)
}
