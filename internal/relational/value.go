// Package relational is an in-process relational database engine: typed
// tables, hash indexes, and a SQL-subset query processor (SELECT with
// joins, WHERE filters including LIKE and IN, ORDER BY, LIMIT, DISTINCT).
//
// It is the PostgreSQL stand-in for ThreatRaptor's relational storage
// backend (Section III-B): system entities and system events are stored in
// separate tables with indexes on key attributes, and TBQL event patterns
// are compiled into small SQL data queries executed here.
package relational

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind is the type of a Value.
type Kind uint8

// Supported column/value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindString
)

// Value is a single typed cell.
type Value struct {
	K Kind
	I int64
	S string
}

// Null, Int and Str build values.
func Null() Value        { return Value{K: KindNull} }
func Int(i int64) Value  { return Value{K: KindInt, I: i} }
func Str(s string) Value { return Value{K: KindString, S: s} }
func Bool(b bool) Value {
	if b {
		return Int(1)
	}
	return Int(0)
}

// IsNull reports whether v is the NULL value.
func (v Value) IsNull() bool { return v.K == KindNull }

// Truthy reports whether v counts as true in a WHERE clause.
func (v Value) Truthy() bool {
	switch v.K {
	case KindInt:
		return v.I != 0
	case KindString:
		return v.S != ""
	default:
		return false
	}
}

// String renders the value for result output.
func (v Value) String() string {
	switch v.K {
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindString:
		return v.S
	default:
		return "NULL"
	}
}

// Equal reports strict equality (same kind, same content). NULL never
// equals anything, including NULL, matching SQL semantics for '='.
func (v Value) Equal(o Value) bool {
	if v.K == KindNull || o.K == KindNull {
		return false
	}
	if v.K != o.K {
		// Allow numeric-string comparison leniency: "42" == 42.
		if v.K == KindString && o.K == KindInt {
			if n, err := strconv.ParseInt(v.S, 10, 64); err == nil {
				return n == o.I
			}
			return false
		}
		if v.K == KindInt && o.K == KindString {
			return o.Equal(v)
		}
		return false
	}
	if v.K == KindInt {
		return v.I == o.I
	}
	return v.S == o.S
}

// Compare returns -1, 0, or +1 ordering v relative to o, with an error for
// incomparable kinds. NULL sorts before everything.
func (v Value) Compare(o Value) (int, error) {
	if v.K == KindNull || o.K == KindNull {
		switch {
		case v.K == o.K:
			return 0, nil
		case v.K == KindNull:
			return -1, nil
		default:
			return 1, nil
		}
	}
	if v.K != o.K {
		return 0, fmt.Errorf("relational: cannot compare %v and %v", v.K, o.K)
	}
	if v.K == KindInt {
		switch {
		case v.I < o.I:
			return -1, nil
		case v.I > o.I:
			return 1, nil
		default:
			return 0, nil
		}
	}
	return strings.Compare(v.S, o.S), nil
}

// Key returns a hashable representation for index and DISTINCT use.
func (v Value) Key() string {
	switch v.K {
	case KindInt:
		return "i" + strconv.FormatInt(v.I, 10)
	case KindString:
		return "s" + v.S
	default:
		return "n"
	}
}

// Like reports whether s matches the SQL LIKE pattern: '%' matches any
// sequence (including empty) and '_' matches exactly one byte. Matching is
// case-sensitive, like PostgreSQL's LIKE.
func Like(s, pattern string) bool {
	return likeMatch(s, pattern)
}

func likeMatch(s, p string) bool {
	// Iterative two-pointer wildcard match ('%' = '*', '_' = '?').
	var si, pi int
	star, ss := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star, ss = pi, si
			pi++
		case star >= 0:
			pi = star + 1
			ss++
			si = ss
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}
