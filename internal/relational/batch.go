package relational

import "sync/atomic"

// This file is the vectorized half of the executor: predicates whose shape
// allows it are compiled to batch kernels that evaluate a whole selection
// vector per call with tight typed loops over the column vectors, instead
// of one closure call per row. Shapes the kernels do not cover stay on the
// row-at-a-time closures from plan.go, applied to the surviving selection
// in the same conjunct order.

// BatchSize is the number of rows a full-table scan feeds through the
// vectorized filters per batch. It is a variable (not a constant) so tests
// can shrink it to force many-batch executions on small tables; production
// code must treat it as read-only.
var BatchSize = 1024

// ShardMinRows is the minimum level-0 table size for the sharded scan
// path: full scans over at least this many rows are split into contiguous
// row ranges executed by concurrent workers. A variable for the same
// test-only reason as BatchSize.
var ShardMinRows = 8192

// vecPred is one batch-compilable predicate: filterSel appends to dst the
// rows of sel that satisfy it, filterRange does the same for the dense row
// range [lo, hi). dst may share backing storage with sel (the write index
// never passes the read index), which is how the executor filters a
// selection in place.
type vecPred struct {
	filterSel   func(st *execState, sel, dst []int32) []int32
	filterRange func(st *execState, lo, hi int32, dst []int32) []int32
}

// nullAt reports whether bit r is set in a bitmap known to cover row r
// (appendRow keeps non-empty bitmaps grown to the full row count). The
// word load is atomic: the writer may set bits for post-snapshot rows in
// the word that also covers the snapshot's tail rows (see bitmap).
func nullAt(nb bitmap, r int32) bool {
	return atomic.LoadUint64(&nb[r>>6])&(1<<(uint(r)&63)) != 0
}

// The generic kernels below are instantiated for int64 and string columns.
// Each comes in a selection-vector and a dense-range variant, and each
// branches once on bitmap presence so the no-NULL loop carries no per-row
// null check. NULL ordering follows the engine convention (NULL sorts
// before every value): < and <= keep NULL rows, =, <>, > and >= drop them.

type orderedCol interface{ ~int32 | ~int64 | ~string }

func filterEq[T orderedCol](col []T, nb bitmap, k T, sel, dst []int32) []int32 {
	if len(nb) == 0 {
		for _, r := range sel {
			if col[r] == k {
				dst = append(dst, r)
			}
		}
		return dst
	}
	for _, r := range sel {
		if !nullAt(nb, r) && col[r] == k {
			dst = append(dst, r)
		}
	}
	return dst
}

func filterEqRange[T orderedCol](col []T, nb bitmap, k T, lo, hi int32, dst []int32) []int32 {
	if len(nb) == 0 {
		for r := lo; r < hi; r++ {
			if col[r] == k {
				dst = append(dst, r)
			}
		}
		return dst
	}
	for r := lo; r < hi; r++ {
		if !nullAt(nb, r) && col[r] == k {
			dst = append(dst, r)
		}
	}
	return dst
}

func filterNe[T orderedCol](col []T, nb bitmap, k T, sel, dst []int32) []int32 {
	if len(nb) == 0 {
		for _, r := range sel {
			if col[r] != k {
				dst = append(dst, r)
			}
		}
		return dst
	}
	for _, r := range sel {
		if !nullAt(nb, r) && col[r] != k {
			dst = append(dst, r)
		}
	}
	return dst
}

func filterNeRange[T orderedCol](col []T, nb bitmap, k T, lo, hi int32, dst []int32) []int32 {
	if len(nb) == 0 {
		for r := lo; r < hi; r++ {
			if col[r] != k {
				dst = append(dst, r)
			}
		}
		return dst
	}
	for r := lo; r < hi; r++ {
		if !nullAt(nb, r) && col[r] != k {
			dst = append(dst, r)
		}
	}
	return dst
}

func filterLt[T orderedCol](col []T, nb bitmap, k T, sel, dst []int32) []int32 {
	if len(nb) == 0 {
		for _, r := range sel {
			if col[r] < k {
				dst = append(dst, r)
			}
		}
		return dst
	}
	for _, r := range sel {
		if nullAt(nb, r) || col[r] < k {
			dst = append(dst, r)
		}
	}
	return dst
}

func filterLtRange[T orderedCol](col []T, nb bitmap, k T, lo, hi int32, dst []int32) []int32 {
	if len(nb) == 0 {
		for r := lo; r < hi; r++ {
			if col[r] < k {
				dst = append(dst, r)
			}
		}
		return dst
	}
	for r := lo; r < hi; r++ {
		if nullAt(nb, r) || col[r] < k {
			dst = append(dst, r)
		}
	}
	return dst
}

func filterLe[T orderedCol](col []T, nb bitmap, k T, sel, dst []int32) []int32 {
	if len(nb) == 0 {
		for _, r := range sel {
			if col[r] <= k {
				dst = append(dst, r)
			}
		}
		return dst
	}
	for _, r := range sel {
		if nullAt(nb, r) || col[r] <= k {
			dst = append(dst, r)
		}
	}
	return dst
}

func filterLeRange[T orderedCol](col []T, nb bitmap, k T, lo, hi int32, dst []int32) []int32 {
	if len(nb) == 0 {
		for r := lo; r < hi; r++ {
			if col[r] <= k {
				dst = append(dst, r)
			}
		}
		return dst
	}
	for r := lo; r < hi; r++ {
		if nullAt(nb, r) || col[r] <= k {
			dst = append(dst, r)
		}
	}
	return dst
}

func filterGt[T orderedCol](col []T, nb bitmap, k T, sel, dst []int32) []int32 {
	if len(nb) == 0 {
		for _, r := range sel {
			if col[r] > k {
				dst = append(dst, r)
			}
		}
		return dst
	}
	for _, r := range sel {
		if !nullAt(nb, r) && col[r] > k {
			dst = append(dst, r)
		}
	}
	return dst
}

func filterGtRange[T orderedCol](col []T, nb bitmap, k T, lo, hi int32, dst []int32) []int32 {
	if len(nb) == 0 {
		for r := lo; r < hi; r++ {
			if col[r] > k {
				dst = append(dst, r)
			}
		}
		return dst
	}
	for r := lo; r < hi; r++ {
		if !nullAt(nb, r) && col[r] > k {
			dst = append(dst, r)
		}
	}
	return dst
}

func filterGe[T orderedCol](col []T, nb bitmap, k T, sel, dst []int32) []int32 {
	if len(nb) == 0 {
		for _, r := range sel {
			if col[r] >= k {
				dst = append(dst, r)
			}
		}
		return dst
	}
	for _, r := range sel {
		if !nullAt(nb, r) && col[r] >= k {
			dst = append(dst, r)
		}
	}
	return dst
}

func filterGeRange[T orderedCol](col []T, nb bitmap, k T, lo, hi int32, dst []int32) []int32 {
	if len(nb) == 0 {
		for r := lo; r < hi; r++ {
			if col[r] >= k {
				dst = append(dst, r)
			}
		}
		return dst
	}
	for r := lo; r < hi; r++ {
		if !nullAt(nb, r) && col[r] >= k {
			dst = append(dst, r)
		}
	}
	return dst
}

// filterCmp dispatches one comparison over a selection by operator. The
// op switch runs once per batch; the chosen kernel loops.
func filterCmp[T orderedCol](col []T, nb bitmap, op string, k T, sel, dst []int32) []int32 {
	switch op {
	case "=":
		return filterEq(col, nb, k, sel, dst)
	case "<>":
		return filterNe(col, nb, k, sel, dst)
	case "<":
		return filterLt(col, nb, k, sel, dst)
	case "<=":
		return filterLe(col, nb, k, sel, dst)
	case ">":
		return filterGt(col, nb, k, sel, dst)
	default:
		return filterGe(col, nb, k, sel, dst)
	}
}

func filterCmpRange[T orderedCol](col []T, nb bitmap, op string, k T, lo, hi int32, dst []int32) []int32 {
	switch op {
	case "=":
		return filterEqRange(col, nb, k, lo, hi, dst)
	case "<>":
		return filterNeRange(col, nb, k, lo, hi, dst)
	case "<":
		return filterLtRange(col, nb, k, lo, hi, dst)
	case "<=":
		return filterLeRange(col, nb, k, lo, hi, dst)
	case ">":
		return filterGtRange(col, nb, k, lo, hi, dst)
	default:
		return filterGeRange(col, nb, k, lo, hi, dst)
	}
}

// colVec fetches a column's current typed vector and bitmap at filter
// time, resolved through the execution's bound tables so a snapshot-pinned
// run reads the frozen headers. Capturing the slices at plan time would go
// stale: cached plans outlive inserts, and append can relocate the vectors.
func intVec(a colAccess, st *execState) ([]int64, bitmap) {
	c := &st.tabs[a.lvl].cols[a.col]
	return c.ints, c.null
}

func strVec(a colAccess, st *execState) ([]string, bitmap) {
	c := &st.tabs[a.lvl].cols[a.col]
	return c.strs, c.null
}

// vecCmpLit builds the kernels for "col OP literal" where both sides share
// one kind.
func vecCmpLit(a colAccess, op string, k Value) *vecPred {
	if a.kind == KindInt {
		kv := k.I
		return &vecPred{
			filterSel: func(st *execState, sel, dst []int32) []int32 {
				col, nb := intVec(a, st)
				return filterCmp(col, nb, op, kv, sel, dst)
			},
			filterRange: func(st *execState, lo, hi int32, dst []int32) []int32 {
				col, nb := intVec(a, st)
				return filterCmpRange(col, nb, op, kv, lo, hi, dst)
			},
		}
	}
	kv := k.S
	return &vecPred{
		filterSel: func(st *execState, sel, dst []int32) []int32 {
			col, nb := strVec(a, st)
			return filterCmp(col, nb, op, kv, sel, dst)
		},
		filterRange: func(st *execState, lo, hi int32, dst []int32) []int32 {
			col, nb := strVec(a, st)
			return filterCmpRange(col, nb, op, kv, lo, hi, dst)
		},
	}
}

// vecCmpOuter builds the kernels for "col OP outer-column" where the other
// column belongs to an earlier nested-loop level: its value is fixed while
// this level scans, so each batch reads it once and reuses the literal
// kernels. A NULL outer value falls into the rare nullCmp cases, handled
// by the null-combination filters below.
func vecCmpOuter(a colAccess, op string, outer colAccess) *vecPred {
	if a.kind == KindInt {
		return &vecPred{
			filterSel: func(st *execState, sel, dst []int32) []int32 {
				col, nb := intVec(a, st)
				k, knull := outer.intAt(st)
				if knull {
					return filterVsNull(nb, op, sel, dst)
				}
				return filterCmp(col, nb, op, k, sel, dst)
			},
			filterRange: func(st *execState, lo, hi int32, dst []int32) []int32 {
				col, nb := intVec(a, st)
				k, knull := outer.intAt(st)
				if knull {
					return filterVsNullRange(nb, op, lo, hi, dst)
				}
				return filterCmpRange(col, nb, op, k, lo, hi, dst)
			},
		}
	}
	return &vecPred{
		filterSel: func(st *execState, sel, dst []int32) []int32 {
			col, nb := strVec(a, st)
			k, knull := outer.strAt(st)
			if knull {
				return filterVsNull(nb, op, sel, dst)
			}
			return filterCmp(col, nb, op, k, sel, dst)
		},
		filterRange: func(st *execState, lo, hi int32, dst []int32) []int32 {
			col, nb := strVec(a, st)
			k, knull := outer.strAt(st)
			if knull {
				return filterVsNullRange(nb, op, lo, hi, dst)
			}
			return filterCmpRange(col, nb, op, k, lo, hi, dst)
		},
	}
}

// filterVsNull applies "col OP NULL" row filtering with the engine's
// nullCmp ordering: = and <> never match, < matches nothing (NULL is not
// before NULL), <= keeps exactly the NULL rows, > keeps the non-NULL rows,
// >= keeps everything.
func filterVsNull(nb bitmap, op string, sel, dst []int32) []int32 {
	switch op {
	case ">=":
		return append(dst, sel...)
	case "<=":
		if len(nb) == 0 {
			return dst
		}
		for _, r := range sel {
			if nullAt(nb, r) {
				dst = append(dst, r)
			}
		}
		return dst
	case ">":
		if len(nb) == 0 {
			return append(dst, sel...)
		}
		for _, r := range sel {
			if !nullAt(nb, r) {
				dst = append(dst, r)
			}
		}
		return dst
	default: // "=", "<>", "<"
		return dst
	}
}

func filterVsNullRange(nb bitmap, op string, lo, hi int32, dst []int32) []int32 {
	switch op {
	case ">=":
		for r := lo; r < hi; r++ {
			dst = append(dst, r)
		}
		return dst
	case "<=", ">":
		wantNull := op == "<="
		if len(nb) == 0 {
			if wantNull {
				return dst
			}
			for r := lo; r < hi; r++ {
				dst = append(dst, r)
			}
			return dst
		}
		for r := lo; r < hi; r++ {
			if nullAt(nb, r) == wantNull {
				dst = append(dst, r)
			}
		}
		return dst
	default:
		return dst
	}
}

// vecLike builds the kernels for "col LIKE 'pattern'" with the pattern
// prepared once (compileLikePattern's Contains/HasPrefix/... lowering).
func vecLike(a colAccess, pattern string) *vecPred {
	match := compileLikePattern(pattern)
	return &vecPred{
		filterSel: func(st *execState, sel, dst []int32) []int32 {
			col, nb := strVec(a, st)
			if len(nb) == 0 {
				for _, r := range sel {
					if match(col[r]) {
						dst = append(dst, r)
					}
				}
				return dst
			}
			for _, r := range sel {
				if !nullAt(nb, r) && match(col[r]) {
					dst = append(dst, r)
				}
			}
			return dst
		},
		filterRange: func(st *execState, lo, hi int32, dst []int32) []int32 {
			col, nb := strVec(a, st)
			if len(nb) == 0 {
				for r := lo; r < hi; r++ {
					if match(col[r]) {
						dst = append(dst, r)
					}
				}
				return dst
			}
			for r := lo; r < hi; r++ {
				if !nullAt(nb, r) && match(col[r]) {
					dst = append(dst, r)
				}
			}
			return dst
		},
	}
}

// vecInSet builds the kernels for "col [NOT] IN (literals...)" over a
// same-kind literal set. A NULL cell is a member of nothing: it passes
// exactly when the list is negated.
func filterIn[T orderedCol](col []T, nb bitmap, set map[T]struct{}, negate bool, sel, dst []int32) []int32 {
	if len(nb) == 0 {
		for _, r := range sel {
			if _, member := set[col[r]]; member != negate {
				dst = append(dst, r)
			}
		}
		return dst
	}
	for _, r := range sel {
		if nullAt(nb, r) {
			if negate {
				dst = append(dst, r)
			}
			continue
		}
		if _, member := set[col[r]]; member != negate {
			dst = append(dst, r)
		}
	}
	return dst
}

func filterInRange[T orderedCol](col []T, nb bitmap, set map[T]struct{}, negate bool, lo, hi int32, dst []int32) []int32 {
	if len(nb) == 0 {
		for r := lo; r < hi; r++ {
			if _, member := set[col[r]]; member != negate {
				dst = append(dst, r)
			}
		}
		return dst
	}
	for r := lo; r < hi; r++ {
		if nullAt(nb, r) {
			if negate {
				dst = append(dst, r)
			}
			continue
		}
		if _, member := set[col[r]]; member != negate {
			dst = append(dst, r)
		}
	}
	return dst
}

func vecInInt(a colAccess, set map[int64]struct{}, negate bool) *vecPred {
	return &vecPred{
		filterSel: func(st *execState, sel, dst []int32) []int32 {
			col, nb := intVec(a, st)
			return filterIn(col, nb, set, negate, sel, dst)
		},
		filterRange: func(st *execState, lo, hi int32, dst []int32) []int32 {
			col, nb := intVec(a, st)
			return filterInRange(col, nb, set, negate, lo, hi, dst)
		},
	}
}

func vecInStr(a colAccess, set map[string]struct{}, negate bool) *vecPred {
	return &vecPred{
		filterSel: func(st *execState, sel, dst []int32) []int32 {
			col, nb := strVec(a, st)
			return filterIn(col, nb, set, negate, sel, dst)
		},
		filterRange: func(st *execState, lo, hi int32, dst []int32) []int32 {
			col, nb := strVec(a, st)
			return filterInRange(col, nb, set, negate, lo, hi, dst)
		},
	}
}

// compileVecPred compiles conjunct e into a batch kernel when its shape is
// vectorizable at level lvl: a comparison or LIKE between a level-lvl
// column and a same-kind literal or earlier-level column, or a literal IN
// list over a level-lvl column. Returns nil for every other shape; those
// stay on the row-at-a-time closures.
func (b *binding) compileVecPred(lvl int, e Expr) *vecPred {
	switch v := e.(type) {
	case BinOp:
		op := v.Op
		switch op {
		case "=", "<>", "<", "<=", ">", ">=", "like":
		default:
			return nil
		}
		l, r := v.L, v.R
		// Normalize the level-lvl column to the left, flipping the
		// operator (a LIKE pattern on the left is not a column match).
		if !b.isColAt(lvl, l) && b.isColAt(lvl, r) {
			if op == "like" {
				return nil
			}
			l, r = r, l
			switch op {
			case "<":
				op = ">"
			case "<=":
				op = ">="
			case ">":
				op = "<"
			case ">=":
				op = "<="
			}
		}
		lc, ok := l.(ColRef)
		if !ok {
			return nil
		}
		la, ok := b.colAccess(lc)
		if !ok || la.lvl != lvl {
			return nil
		}
		switch rv := r.(type) {
		case Param:
			if op == "like" || la.kind != KindInt || la.dictOf() != nil {
				return nil
			}
			slot, err := checkSlot(rv.Slot)
			if err != nil {
				return nil
			}
			return vecCmpParam(la, op, slot)
		case Lit:
			if op == "like" {
				if la.kind != KindString || rv.V.K != KindString {
					return nil
				}
				if la.dictOf() != nil {
					return vecDictLike(la, rv.V.S)
				}
				return vecLike(la, rv.V.S)
			}
			if la.kind != rv.V.K {
				return nil
			}
			if la.dictOf() != nil {
				return vecDictCmp(la, op, rv.V.S)
			}
			return vecCmpLit(la, op, rv.V)
		case ColRef:
			if op == "like" {
				return nil
			}
			ra, ok := b.colAccess(rv)
			if !ok || ra.lvl >= lvl || la.kind != ra.kind {
				return nil
			}
			if la.dictOf() != nil {
				// Dict codes cannot compare against a varying outer
				// value; the row-at-a-time closure decodes instead.
				return nil
			}
			return vecCmpOuter(la, op, ra)
		}
		return nil
	case ParamIDs:
		c, ok := v.E.(ColRef)
		if !ok {
			return nil
		}
		a, ok := b.colAccess(c)
		if !ok || a.lvl != lvl || a.kind != KindInt {
			return nil
		}
		slot, err := checkSlot(v.Slot)
		if err != nil {
			return nil
		}
		return vecParamIDs(a, slot)
	case InList:
		c, ok := v.E.(ColRef)
		if !ok {
			return nil
		}
		a, ok := b.colAccess(c)
		if !ok || a.lvl != lvl {
			return nil
		}
		if a.kind == KindInt {
			set, ok := buildIntSet(v.Vals)
			if !ok {
				return nil
			}
			return vecInInt(a, set, v.Negate)
		}
		set, ok := buildStrSet(v.Vals)
		if !ok {
			return nil
		}
		if a.dictOf() != nil {
			return vecDictIn(a, set, v.Negate)
		}
		return vecInStr(a, set, v.Negate)
	}
	return nil
}

// isColAt reports whether e is a column reference resolving to level lvl.
func (b *binding) isColAt(lvl int, e Expr) bool {
	c, ok := e.(ColRef)
	if !ok {
		return false
	}
	clvl, _, err := b.resolve(c)
	return err == nil && clvl == lvl
}
