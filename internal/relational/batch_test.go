package relational

import (
	"fmt"
	"runtime"
	"testing"
)

// batchTestTable builds a deterministic single table of n rows with an int
// key, cyclic strings, an int payload, and a string column that is NULL on
// every third row — enough shape to exercise every vectorized kernel plus
// the null paths.
func batchTestTable(t *testing.T, n int) *DB {
	t.Helper()
	db := NewDB()
	tbl, err := db.CreateTable("t", Schema{
		{Name: "id", Kind: KindInt},
		{Name: "name", Kind: KindString},
		{Name: "size", Kind: KindInt},
		{Name: "note", Kind: KindString},
	})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"/bin/tar", "/bin/cp", "/tmp/x", "/etc/passwd", "/tmp/upload.tar"}
	rows := make([][]Value, n)
	for i := 0; i < n; i++ {
		note := Value(Str(fmt.Sprintf("note%d", i%7)))
		if i%3 == 0 {
			note = Null()
		}
		rows[i] = []Value{Int(int64(i)), Str(names[i%len(names)]), Int(int64(i % 97)), note}
	}
	if err := tbl.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	return db
}

// oracleSelectIDs evaluates "SELECT id FROM t WHERE <pred>" by brute
// force: EvalExpr over every materialized row, independent of the
// planner, kernels, batching, and sharding.
func oracleSelectIDs(t *testing.T, db *DB, sql string) []string {
	t.Helper()
	stmt, err := ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	tbl := db.Table("t")
	var out []string
	for i := 0; i < tbl.Len(); i++ {
		row := tbl.Row(i)
		resolve := func(c ColRef) (Value, error) {
			col := tbl.Schema.IndexOf(c.Column)
			if col < 0 {
				return Null(), fmt.Errorf("no column %q", c.Column)
			}
			return row[col], nil
		}
		if stmt.Where != nil {
			v, err := EvalExpr(stmt.Where, resolve)
			if err != nil {
				t.Fatalf("oracle: %v\n%s", err, sql)
			}
			if !v.Truthy() {
				continue
			}
		}
		out = append(out, row[0].String())
	}
	return out
}

// TestBatchBoundaryRowCounts runs the vectorized executor on tables whose
// row counts sit on every batch boundary — 0, 1, one batch, batch±1, and
// many batches — and cross-checks each against the brute-force oracle.
// The predicates cover the vectorized kernels (typed comparisons, LIKE,
// IN, NULL ordering) and the row-at-a-time residual fallback (arithmetic).
func TestBatchBoundaryRowCounts(t *testing.T) {
	origBS, origShard := BatchSize, ShardMinRows
	BatchSize = 64
	ShardMinRows = 1 << 30 // isolate batching from sharding
	defer func() { BatchSize = origBS; ShardMinRows = origShard }()

	preds := []string{
		"id >= 0",                                    // keep everything
		"name = '/bin/tar'",                          // string eq kernel
		"name <> '/bin/cp'",                          // string ne kernel
		"size < 40",                                  // int lt kernel
		"size >= 90",                                 // int ge kernel
		"name LIKE '%tar%'",                          // LIKE kernel
		"name LIKE '/tmp%'",                          // prefix LIKE kernel
		"id IN (0, 1, 63, 64, 65, 128, 209)",         // int IN kernel
		"name NOT IN ('/bin/tar', '/tmp/x')",         // negated string IN kernel
		"note = 'note1'",                             // eq over a nullable column
		"note <= 'note3'",                            // NULL-keeping ordering kernel
		"size + 1 < 20",                              // arithmetic: residual row predicate
		"size < 30 OR name = '/etc/passwd'",          // OR: residual row predicate
		"NOT name = '/bin/cp' AND size > 3",          // mixed residual and kernel
		"name LIKE '%tar%' AND size < 50 AND id > 2", // kernel chain
	}
	for _, n := range []int{0, 1, 63, 64, 65, 3*64 + 17} {
		db := batchTestTable(t, n)
		for _, pred := range preds {
			sql := "SELECT id FROM t WHERE " + pred + " ORDER BY id"
			rs, err := db.Query(sql)
			if err != nil {
				t.Fatalf("n=%d: %v\n%s", n, err, sql)
			}
			want := oracleSelectIDs(t, db, sql)
			got := rs.Strings()
			if len(got) != len(want) {
				t.Fatalf("n=%d: %d rows, oracle %d\n%s", n, len(got), len(want), sql)
			}
			for i := range got {
				if got[i][0] != want[i] {
					t.Fatalf("n=%d row %d: %s vs oracle %s\n%s", n, i, got[i][0], want[i], sql)
				}
			}
		}
	}
}

// TestBatchDistinctAndLimit checks the streaming DISTINCT sink and the
// LIMIT early-exit across batch boundaries: first-seen order must match
// the materialize-then-dedup seed semantics.
func TestBatchDistinctAndLimit(t *testing.T) {
	origBS := BatchSize
	BatchSize = 64
	defer func() { BatchSize = origBS }()

	db := batchTestTable(t, 3*64+17)
	rs, err := db.Query("SELECT DISTINCT name FROM t WHERE size < 90")
	if err != nil {
		t.Fatal(err)
	}
	// 5 cyclic names, first-seen order is insertion order.
	want := []string{"/bin/tar", "/bin/cp", "/tmp/x", "/etc/passwd", "/tmp/upload.tar"}
	if rs.Len() != len(want) {
		t.Fatalf("distinct rows = %d, want %d", rs.Len(), len(want))
	}
	for i, w := range want {
		if rs.Rows[i][0].S != w {
			t.Fatalf("distinct row %d = %s, want %s", i, rs.Rows[i][0].S, w)
		}
	}

	rs, err = db.Query("SELECT id FROM t WHERE size >= 0 LIMIT 70")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 70 {
		t.Fatalf("limit rows = %d", rs.Len())
	}
	for i := 0; i < 70; i++ {
		if rs.Rows[i][0].I != int64(i) {
			t.Fatalf("limit row %d = %d (scan order broken)", i, rs.Rows[i][0].I)
		}
	}
}

// TestCrossLevelVecJoin exercises the outer-column kernels: an unindexed
// join evaluates "r.k = l.k" as a vectorized scan of r per l row, and must
// match the indexed probe plan exactly.
func TestCrossLevelVecJoin(t *testing.T) {
	origBS := BatchSize
	BatchSize = 16
	defer func() { BatchSize = origBS }()

	build := func(indexed bool) *DB {
		db := NewDB()
		l, _ := db.CreateTable("l", Schema{{Name: "id", Kind: KindInt}, {Name: "k", Kind: KindInt}})
		r, _ := db.CreateTable("r", Schema{{Name: "k", Kind: KindInt}, {Name: "v", Kind: KindString}})
		for i := 0; i < 40; i++ {
			l.Insert([]Value{Int(int64(i)), Int(int64(i % 7))})
		}
		for i := 0; i < 90; i++ {
			kv := Value(Int(int64(i % 9)))
			if i%11 == 0 {
				kv = Null()
			}
			r.Insert([]Value{kv, Str(fmt.Sprintf("v%d", i))})
		}
		if indexed {
			if err := r.CreateIndex("k"); err != nil {
				t.Fatal(err)
			}
		}
		return db
	}
	sql := "SELECT l.id, r.v FROM l, r WHERE r.k = l.k ORDER BY l.id, r.v"
	a, err := build(false).Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	b, err := build(true).Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	as, bs := a.Strings(), b.Strings()
	if len(as) != len(bs) || len(as) == 0 {
		t.Fatalf("scan join %d rows, index join %d rows", len(as), len(bs))
	}
	for i := range as {
		if as[i][0] != bs[i][0] || as[i][1] != bs[i][1] {
			t.Fatalf("row %d differs: %v vs %v", i, as[i], bs[i])
		}
	}
}

// TestShardedScanEquivalence forces the sharded level-0 scan and checks it
// returns exactly the serial plan's rows in the same order, with and
// without DISTINCT.
func TestShardedScanEquivalence(t *testing.T) {
	origBS, origShard := BatchSize, ShardMinRows
	defer func() { BatchSize = origBS; ShardMinRows = origShard }()
	BatchSize = 64
	// The sharded path requires GOMAXPROCS > 1; force it so the test is
	// not vacuous on single-CPU machines.
	if runtime.GOMAXPROCS(0) < 2 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	}

	db := batchTestTable(t, 5000)
	for _, sql := range []string{
		"SELECT id, name FROM t WHERE name LIKE '%tar%' AND size < 60",
		"SELECT DISTINCT name FROM t WHERE size < 90",
		"SELECT id FROM t WHERE size + 1 < 20", // residual predicate under sharding
	} {
		ShardMinRows = 1 << 30
		serial, err := db.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		ShardMinRows = 256
		sharded, err := db.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		ss, ps := serial.Strings(), sharded.Strings()
		if len(ss) != len(ps) || len(ss) == 0 {
			t.Fatalf("serial %d rows, sharded %d rows\n%s", len(ss), len(ps), sql)
		}
		for i := range ss {
			for j := range ss[i] {
				if ss[i][j] != ps[i][j] {
					t.Fatalf("row %d col %d: %s vs %s\n%s", i, j, ss[i][j], ps[i][j], sql)
				}
			}
		}
	}
}
