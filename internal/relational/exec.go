package relational

import (
	"fmt"
	"sort"
	"strings"
)

// ExecStats counts the work done by a query execution, for benchmarking
// and for comparing naive monolithic plans against scheduled plans.
type ExecStats struct {
	RowsScanned  int // rows visited across all scans
	IndexLookups int // hash index probes that replaced full scans
}

// Query parses and executes a SELECT statement against db.
func (db *DB) Query(sql string) (*ResultSet, error) {
	rs, _, err := db.QueryStats(sql)
	return rs, err
}

// QueryStats is Query plus execution statistics. Plans are cached per
// distinct SQL text, so repeated data queries skip parsing and planning.
func (db *DB) QueryStats(sql string) (*ResultSet, ExecStats, error) {
	p, err := db.prepare(sql)
	if err != nil {
		return nil, ExecStats{}, err
	}
	return p.run()
}

// Exec runs a parsed SELECT statement (planned fresh, uncached).
func (db *DB) Exec(stmt *SelectStmt) (*ResultSet, ExecStats, error) {
	p, err := db.plan(stmt)
	if err != nil {
		return nil, ExecStats{}, err
	}
	return p.run()
}

// run executes a compiled plan: an index-accelerated nested-loop join
// whose predicates and projection are pre-compiled closures over the
// columnar storage. The plan is read-only; all mutable state is local, so
// one plan may run on many goroutines concurrently.
func (p *plan) run() (*ResultSet, ExecStats, error) {
	st := &execState{rows: make([]int32, len(p.tables))}
	rs := &ResultSet{Columns: p.cols}

	var walk func(lvl int) error
	walk = func(lvl int) error {
		if lvl == len(p.tables) {
			row, err := p.project(st)
			if err != nil {
				return err
			}
			rs.Rows = append(rs.Rows, row)
			return nil
		}
		tbl := p.tables[lvl]
		preds := p.levelPreds[lvl]
		tryRow := func(row int32) error {
			st.stats.RowsScanned++
			st.rows[lvl] = row
			for _, pred := range preds {
				ok, err := pred(st)
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
			}
			return walk(lvl + 1)
		}
		if ia := p.access[lvl]; ia != nil {
			probe := func(key Value) error {
				pos, ok := tbl.lookup(ia.col, key)
				if !ok {
					return nil
				}
				st.stats.IndexLookups++
				for _, r := range pos {
					if err := tryRow(r); err != nil {
						return err
					}
				}
				return nil
			}
			if ia.keyList != nil {
				for _, key := range ia.keyList {
					if err := probe(key); err != nil {
						return err
					}
				}
				return nil
			}
			key, err := ia.keyFn(st)
			if err != nil {
				return err
			}
			return probe(key)
		}
		for row, n := int32(0), int32(tbl.Len()); row < n; row++ {
			if err := tryRow(row); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(0); err != nil {
		return nil, st.stats, err
	}

	if p.stmt.Distinct {
		rs.Rows = DedupRows(rs.Rows)
	}
	if len(p.stmt.OrderBy) > 0 {
		if err := orderResultRows(rs, p.stmt); err != nil {
			return nil, st.stats, err
		}
	}
	if p.stmt.Limit >= 0 && len(rs.Rows) > p.stmt.Limit {
		rs.Rows = rs.Rows[:p.stmt.Limit]
	}
	return rs, st.stats, nil
}

func orderResultRows(rs *ResultSet, stmt *SelectStmt) error {
	// ORDER BY keys must be projected columns (by name) or positions.
	keyIdx := make([]int, len(stmt.OrderBy))
	for i, item := range stmt.OrderBy {
		c, ok := item.Expr.(ColRef)
		if !ok {
			if l, ok := item.Expr.(Lit); ok && l.V.K == KindInt {
				pos := int(l.V.I) - 1
				if pos < 0 || pos >= len(rs.Columns) {
					return fmt.Errorf("sql: ORDER BY position %d out of range", l.V.I)
				}
				keyIdx[i] = pos
				continue
			}
			return fmt.Errorf("sql: ORDER BY supports column names and positions")
		}
		name := c.Column
		if c.Qualifier != "" {
			name = c.Qualifier + "." + c.Column
		}
		found := -1
		for j, label := range rs.Columns {
			if strings.EqualFold(label, name) || strings.EqualFold(label, c.Column) ||
				(c.Qualifier == "" && strings.HasSuffix(strings.ToLower(label), "."+strings.ToLower(c.Column))) {
				found = j
				break
			}
		}
		if found < 0 {
			return fmt.Errorf("sql: ORDER BY column %q not in projection", name)
		}
		keyIdx[i] = found
	}
	var sortErr error
	sort.SliceStable(rs.Rows, func(a, bIdx int) bool {
		for k, pos := range keyIdx {
			cmp, err := rs.Rows[a][pos].Compare(rs.Rows[bIdx][pos])
			if err != nil {
				sortErr = err
				return false
			}
			if cmp != 0 {
				if stmt.OrderBy[k].Desc {
					return cmp > 0
				}
				return cmp < 0
			}
		}
		return false
	})
	return sortErr
}
