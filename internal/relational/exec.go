package relational

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
)

// PanicError captures a panic raised inside a shard worker goroutine. A
// panic in a goroutine cannot be recovered by the caller, so the worker
// converts it into this error and the caller re-surfaces it; the engine's
// query boundary wraps it into an *engine.InternalError.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the worker's stack at the point of the panic.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("relational: executor panic: %v", e.Value)
}

// ExecStats counts the work done by a query execution, for benchmarking
// and for comparing naive monolithic plans against scheduled plans.
type ExecStats struct {
	RowsScanned  int // rows visited across all scans
	IndexLookups int // hash index probes that replaced full scans
	// HashJoinBuilds counts transient join hash tables built by the
	// adaptive fallback (one full inner pass each; see hashjoin.go).
	HashJoinBuilds int
}

// Query parses and executes a SELECT statement against db.
func (db *DB) Query(sql string) (*ResultSet, error) {
	rs, _, err := db.QueryStats(sql)
	return rs, err
}

// QueryStats is Query plus execution statistics. Plans are cached per
// distinct SQL text, so repeated data queries skip parsing and planning.
func (db *DB) QueryStats(sql string) (*ResultSet, ExecStats, error) {
	p, err := db.prepare(sql)
	if err != nil {
		return nil, ExecStats{}, err
	}
	return p.run(nil, nil)
}

// Exec runs a parsed SELECT statement (planned fresh, uncached).
func (db *DB) Exec(stmt *SelectStmt) (*ResultSet, ExecStats, error) {
	p, err := db.plan(stmt)
	if err != nil {
		return nil, ExecStats{}, err
	}
	return p.run(nil, nil)
}

// errStopScan aborts the nested-loop walk once a LIMIT (with no ORDER BY)
// is satisfied; it never escapes run.
var errStopScan = errors.New("relational: scan limit reached")

// maxSlabRows caps how many result rows one projection slab holds:
// emitted rows are sub-slices of a shared backing array, so result
// materialization costs one allocation per slab instead of one per row.
// Slabs start small (most data queries emit a handful of rows) and grow
// geometrically toward the cap.
const maxSlabRows = 256

// rowSink collects projected result rows: slab-backed batch allocation,
// optional streaming DISTINCT (duplicates are dropped as they are emitted,
// with DedupRows' exact hash/equality semantics), and optional early exit
// when LIMIT is reached.
type rowSink struct {
	rs       *ResultSet
	width    int
	slab     []Value
	slabRows int
	dedup    *dedupSet
	limit    int // -1: no early exit
}

func (s *rowSink) emit(p *plan, st *execState) error {
	if len(s.slab) < s.width {
		if s.slabRows < maxSlabRows {
			s.slabRows = s.slabRows*8 + 4
			if s.slabRows > maxSlabRows {
				s.slabRows = maxSlabRows
			}
		}
		s.slab = make([]Value, s.width*s.slabRows)
	}
	dst := s.slab[:s.width:s.width]
	if err := p.project(st, dst); err != nil {
		return err
	}
	if s.dedup != nil && s.dedup.seen(dst) {
		return nil // duplicate: the slab space is reused for the next row
	}
	s.slab = s.slab[s.width:]
	s.rs.Rows = append(s.rs.Rows, dst)
	if s.limit >= 0 && len(s.rs.Rows) >= s.limit {
		return errStopScan
	}
	return nil
}

// run executes a compiled plan batch-at-a-time: each nested-loop level
// turns its candidate rows (a dense scan range or an index probe's
// positions) into a selection vector, the level's vectorized predicates
// filter the whole selection per call, row-only predicates filter the
// survivors in the same conjunct order, and each surviving row recurses
// into the next level. Full scans feed the filters BatchSize rows at a
// time; level-0 scans over at least ShardMinRows rows are sharded across
// workers on contiguous row ranges (concatenation preserves scan order).
// The plan is read-only; all mutable state is per-execution, so one plan
// may run on many goroutines concurrently.
func (p *plan) run(ctx context.Context, params *Params) (*ResultSet, ExecStats, error) {
	rs := &ResultSet{Columns: p.cols}
	n0 := int32(p.tableAt(params, 0).Len())
	var stats ExecStats
	ia0 := p.effAccess(params, 0)
	var lo0 int32
	if ia0 == nil && len(p.floors[0]) > 0 {
		lo0 = p.scanStart(params, 0)
	}
	sharded := ia0 == nil && int(n0-lo0) >= ShardMinRows && runtime.GOMAXPROCS(0) > 1
	if sharded {
		// The shard workers receive the parameters by value: capturing the
		// pointer in the worker closures would force every caller's Params
		// to escape to the heap, sharded or not.
		var pv Params
		if params != nil {
			pv = *params
		}
		if err := p.runSharded(ctx, rs, &stats, lo0, n0, pv); err != nil {
			return nil, stats, err
		}
		if p.stmt.Distinct {
			// Per-shard streaming dedup leaves only cross-shard
			// duplicates; one global pass removes those.
			rs.Rows = DedupRows(rs.Rows)
		}
	} else {
		st := p.state()
		st.bindCtx(ctx)
		if params != nil {
			st.params = *params
		}
		p.bindTabs(st)
		sink := p.newSink(rs)
		err := p.walk(st, sink, 0, 0, n0)
		stats = st.stats
		p.release(st)
		if err != nil && err != errStopScan {
			return nil, stats, err
		}
	}
	if len(p.stmt.OrderBy) > 0 {
		if err := orderResultRows(rs, p.stmt); err != nil {
			return nil, stats, err
		}
	}
	if p.stmt.Limit >= 0 && len(rs.Rows) > p.stmt.Limit {
		rs.Rows = rs.Rows[:p.stmt.Limit]
	}
	return rs, stats, nil
}

// newSink builds a collector for one walk: streaming DISTINCT when the
// statement asks for it, and early LIMIT exit when no ORDER BY needs the
// full row set first.
func (p *plan) newSink(rs *ResultSet) *rowSink {
	sink := &rowSink{rs: rs, width: len(p.cols), limit: -1}
	if p.stmt.Distinct {
		sink.dedup = newDedupSet(rs)
	}
	if p.stmt.Limit >= 0 && len(p.stmt.OrderBy) == 0 {
		sink.limit = p.stmt.Limit
	}
	return sink
}

// runSharded splits the level-0 scan range [lo0, n0) — already narrowed
// by any active scan floor — into contiguous chunks, walks each on its
// own worker with private state and sink, and concatenates the per-shard
// rows in shard order (identical row order to the serial scan).
func (p *plan) runSharded(ctx context.Context, rs *ResultSet, stats *ExecStats, lo0, n0 int32, params Params) error {
	span := n0 - lo0
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	minChunk := ShardMinRows / 4
	if minChunk < 1 {
		minChunk = 1
	}
	if max := int(span) / minChunk; workers > max {
		workers = max
	}
	chunk := (span + int32(workers) - 1) / int32(workers)

	type shard struct {
		rs    ResultSet
		stats ExecStats
		err   error
	}
	shards := make([]shard, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := lo0 + int32(w)*chunk
		hi := lo + chunk
		if hi > n0 {
			hi = n0
		}
		wg.Add(1)
		go func(sh *shard, lo, hi int32) {
			defer wg.Done()
			// A panic here would kill the process (goroutine panics are
			// unrecoverable by the caller), so convert it to an error the
			// engine's query boundary can type.
			defer func() {
				if r := recover(); r != nil {
					sh.err = &PanicError{Value: r, Stack: debug.Stack()}
				}
			}()
			st := p.state()
			st.bindCtx(ctx)
			st.params = params
			p.bindTabs(st)
			sink := p.newSink(&sh.rs)
			err := p.walk(st, sink, 0, lo, hi)
			sh.stats = st.stats
			p.release(st)
			if err != nil && err != errStopScan {
				sh.err = err
			}
		}(&shards[w], lo, hi)
	}
	wg.Wait()

	total := 0
	for i := range shards {
		if err := shards[i].err; err != nil {
			return err // lowest shard's error, for determinism
		}
		total += len(shards[i].rs.Rows)
	}
	rs.Rows = make([][]Value, 0, total)
	for i := range shards {
		rs.Rows = append(rs.Rows, shards[i].rs.Rows...)
		stats.RowsScanned += shards[i].stats.RowsScanned
		stats.IndexLookups += shards[i].stats.IndexLookups
		stats.HashJoinBuilds += shards[i].stats.HashJoinBuilds
	}
	return nil
}

// effAccess resolves the level's access path for this execution: an
// optional parameter-list probe with no bound list falls back to the
// access the level would otherwise use (possibly none — a full scan), and
// a literal-keyed probe yields to an active parameter scan floor (the
// suffix holds exactly the new rows; the probe would trawl all history).
func (p *plan) effAccess(params *Params, lvl int) *indexAccess {
	ia := p.access[lvl]
	if ia != nil && ia.optional && ia.listSlot >= 0 &&
		(params == nil || len(params.Lists[ia.listSlot]) == 0) {
		ia = ia.fallback
	}
	if ia != nil && ia.litKey && p.paramFloorActive(params, lvl) {
		return nil
	}
	return ia
}

// walk processes nested-loop level lvl. lo and hi bound the scan range
// (used by the shard workers at level 0; full range everywhere else); they
// are ignored when the level probes an index.
func (p *plan) walk(st *execState, sink *rowSink, lvl int, lo, hi int32) error {
	if lvl == len(p.tables) {
		return sink.emit(p, st)
	}
	tbl := st.tabs[lvl]
	if ia := p.effAccess(&st.params, lvl); ia != nil {
		if ia.keyList != nil {
			for _, key := range ia.keyList {
				if err := st.checkCancel(); err != nil {
					return err
				}
				if err := p.probe(st, sink, lvl, tbl, ia, key); err != nil {
					return err
				}
			}
			return nil
		}
		if ia.listSlot >= 0 {
			for _, id := range st.params.Lists[ia.listSlot] {
				if err := st.checkCancel(); err != nil {
					return err
				}
				if err := p.probe(st, sink, lvl, tbl, ia, Int(id)); err != nil {
					return err
				}
			}
			return nil
		}
		key, err := ia.keyFn(st)
		if err != nil {
			return err
		}
		return p.probe(st, sink, lvl, tbl, ia, key)
	}
	if hj := p.hashJoins[lvl]; hj != nil {
		used, err := p.hashJoinLevel(st, sink, lvl, hj)
		if used || err != nil {
			return err
		}
	}
	if len(p.floors[lvl]) > 0 {
		if s := p.scanStart(&st.params, lvl); s > lo {
			lo = s
		}
	}
	bs := int32(BatchSize)
	for b := lo; b < hi; b += bs {
		// One cancellation poll per batch: off the per-row path, and the
		// nil-done fast path makes it free when no context is bound.
		if st.done != nil {
			select {
			case <-st.done:
				return st.ctx.Err()
			default:
			}
		}
		end := b + bs
		if end > hi {
			end = hi
		}
		if err := p.scanRange(st, sink, lvl, b, end); err != nil {
			return err
		}
	}
	return nil
}

// probe runs one hash-index lookup and feeds the resulting positions
// through the level's filters.
func (p *plan) probe(st *execState, sink *rowSink, lvl int, tbl *Table, ia *indexAccess, key Value) error {
	pos, ok := tbl.lookup(ia.col, key)
	if !ok {
		return nil
	}
	st.stats.IndexLookups++
	st.stats.RowsScanned += len(pos)
	return p.feedPositions(st, sink, lvl, pos)
}

// feedPositions runs a probe's candidate positions (from a hash index or
// a join hash table) through the level's filters and descends.
func (p *plan) feedPositions(st *execState, sink *rowSink, lvl int, pos []int32) error {
	preds := p.levelPreds[lvl]
	// Skip leading inactive predicates (pruned optional parameters).
	for len(preds) > 0 && !preds[0].isActive(st) {
		preds = preds[1:]
	}
	if len(preds) == 0 {
		return p.descend(st, sink, lvl, pos)
	}
	// The positions slice belongs to the index; the first filter reads it
	// and writes survivors into the level's own buffer.
	sel := p.applyPred(st, lvl, preds[0], pos, st.selbuf(lvl, len(pos)))
	sel = p.filterRest(st, lvl, preds[1:], sel)
	return p.descend(st, sink, lvl, sel)
}

// scanRange feeds the dense row range [lo, hi) through the level's
// filters. With no predicates the rows descend directly; otherwise the
// first predicate materializes the surviving selection (a vectorized first
// predicate never materializes the identity selection at all).
func (p *plan) scanRange(st *execState, sink *rowSink, lvl int, lo, hi int32) error {
	st.stats.RowsScanned += int(hi - lo)
	preds := p.levelPreds[lvl]
	for len(preds) > 0 && !preds[0].isActive(st) {
		preds = preds[1:]
	}
	if len(preds) == 0 {
		for r := lo; r < hi; r++ {
			st.rows[lvl] = r
			if err := p.walk(st, sink, lvl+1, 0, int32(p.nextLen(st, lvl))); err != nil {
				return err
			}
		}
		return nil
	}
	buf := st.selbuf(lvl, int(hi-lo))
	var sel []int32
	if first := preds[0]; first.vec != nil {
		sel = first.vec.filterRange(st, lo, hi, buf)
	} else {
		out := buf
		for r := lo; r < hi; r++ {
			st.rows[lvl] = r
			ok, err := first.row(st)
			if err != nil {
				return err
			}
			if ok {
				out = append(out, r)
			}
		}
		sel = out
	}
	sel = p.filterRest(st, lvl, preds[1:], sel)
	return p.descend(st, sink, lvl, sel)
}

// filterRest applies the remaining active predicates, in conjunct order,
// to the selection in place.
func (p *plan) filterRest(st *execState, lvl int, preds []levelPred, sel []int32) []int32 {
	for i := range preds {
		if len(sel) == 0 || st.pendErr != nil {
			return sel
		}
		if !preds[i].isActive(st) {
			continue
		}
		sel = p.applyPred(st, lvl, preds[i], sel, sel[:0])
	}
	return sel
}

// applyPred filters src into dst (which may alias src's prefix) with one
// predicate. Row-predicate errors are deferred onto the state and
// re-raised by descend, keeping the kernels' append-only signatures.
func (p *plan) applyPred(st *execState, lvl int, pr levelPred, src, dst []int32) []int32 {
	if pr.vec != nil {
		return pr.vec.filterSel(st, src, dst)
	}
	for _, r := range src {
		st.rows[lvl] = r
		ok, err := pr.row(st)
		if err != nil {
			st.pendErr = err
			return dst
		}
		if ok {
			dst = append(dst, r)
		}
	}
	return dst
}

// descend recurses into the next level for every selected row.
func (p *plan) descend(st *execState, sink *rowSink, lvl int, sel []int32) error {
	if st.pendErr != nil {
		err := st.pendErr
		st.pendErr = nil
		return err
	}
	next := int32(p.nextLen(st, lvl))
	for _, r := range sel {
		st.rows[lvl] = r
		if err := p.walk(st, sink, lvl+1, 0, next); err != nil {
			return err
		}
	}
	return nil
}

// nextLen returns the scan length of level lvl+1 (0 past the last level),
// read through the execution's bound tables so a snapshot-pinned run never
// scans rows appended after its snapshot.
func (p *plan) nextLen(st *execState, lvl int) int {
	if lvl+1 >= len(p.tables) {
		return 0
	}
	return st.tabs[lvl+1].Len()
}

func orderResultRows(rs *ResultSet, stmt *SelectStmt) error {
	// ORDER BY keys must be projected columns (by name) or positions.
	keyIdx := make([]int, len(stmt.OrderBy))
	for i, item := range stmt.OrderBy {
		c, ok := item.Expr.(ColRef)
		if !ok {
			if l, ok := item.Expr.(Lit); ok && l.V.K == KindInt {
				pos := int(l.V.I) - 1
				if pos < 0 || pos >= len(rs.Columns) {
					return fmt.Errorf("sql: ORDER BY position %d out of range", l.V.I)
				}
				keyIdx[i] = pos
				continue
			}
			return fmt.Errorf("sql: ORDER BY supports column names and positions")
		}
		name := c.Column
		if c.Qualifier != "" {
			name = c.Qualifier + "." + c.Column
		}
		found := -1
		for j, label := range rs.Columns {
			if strings.EqualFold(label, name) || strings.EqualFold(label, c.Column) ||
				(c.Qualifier == "" && strings.HasSuffix(strings.ToLower(label), "."+strings.ToLower(c.Column))) {
				found = j
				break
			}
		}
		if found < 0 {
			return fmt.Errorf("sql: ORDER BY column %q not in projection", name)
		}
		keyIdx[i] = found
	}
	var sortErr error
	sort.SliceStable(rs.Rows, func(a, bIdx int) bool {
		for k, pos := range keyIdx {
			cmp, err := rs.Rows[a][pos].Compare(rs.Rows[bIdx][pos])
			if err != nil {
				sortErr = err
				return false
			}
			if cmp != 0 {
				if stmt.OrderBy[k].Desc {
					return cmp > 0
				}
				return cmp < 0
			}
		}
		return false
	})
	return sortErr
}
