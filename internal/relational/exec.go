package relational

import (
	"fmt"
	"sort"
	"strings"
)

// ExecStats counts the work done by a query execution, for benchmarking
// and for comparing naive monolithic plans against scheduled plans.
type ExecStats struct {
	RowsScanned  int // rows visited across all scans
	IndexLookups int // hash index probes that replaced full scans
}

// Query parses and executes a SELECT statement against db.
func (db *DB) Query(sql string) (*ResultSet, error) {
	rs, _, err := db.QueryStats(sql)
	return rs, err
}

// QueryStats is Query plus execution statistics.
func (db *DB) QueryStats(sql string) (*ResultSet, ExecStats, error) {
	stmt, err := ParseSelect(sql)
	if err != nil {
		return nil, ExecStats{}, err
	}
	return db.Exec(stmt)
}

// Exec runs a parsed SELECT statement.
func (db *DB) Exec(stmt *SelectStmt) (*ResultSet, ExecStats, error) {
	var stats ExecStats
	bind, err := newBinding(db, stmt)
	if err != nil {
		return nil, stats, err
	}

	// Gather all filter conjuncts: WHERE plus every JOIN ... ON.
	var conjuncts []Expr
	if stmt.Where != nil {
		conjuncts = flattenAnd(stmt.Where, conjuncts)
	}
	for _, j := range stmt.Joins {
		conjuncts = flattenAnd(j.On, conjuncts)
	}

	// Attach each conjunct to the deepest table it references so it is
	// evaluated as early as possible (predicate pushdown).
	levelPreds := make([][]Expr, len(bind.tables))
	for _, c := range conjuncts {
		lvl, err := bind.deepestLevel(c)
		if err != nil {
			return nil, stats, err
		}
		levelPreds[lvl] = append(levelPreds[lvl], c)
	}

	// Pre-plan index access per level: an equality conjunct at level k of
	// the form tk.col = X, where X is a literal or references only earlier
	// levels and tk.col is indexed, lets us probe instead of scan.
	access := make([]*indexAccess, len(bind.tables))
	for lvl := range bind.tables {
		access[lvl] = bind.planIndexAccess(lvl, levelPreds[lvl])
	}

	// Projection setup.
	cols, projector, err := bind.projection(stmt)
	if err != nil {
		return nil, stats, err
	}

	rs := &ResultSet{Columns: cols}
	env := make([][]Value, len(bind.tables))
	var walk func(lvl int) error
	walk = func(lvl int) error {
		if lvl == len(bind.tables) {
			row, err := projector(env)
			if err != nil {
				return err
			}
			rs.Rows = append(rs.Rows, row)
			return nil
		}
		tbl := bind.tables[lvl]
		var candidates []int
		if ia := access[lvl]; ia != nil {
			if ia.keyList != nil {
				for _, key := range ia.keyList {
					pos, ok := tbl.lookup(ia.column, key)
					if ok {
						stats.IndexLookups++
						candidates = append(candidates, pos...)
					}
				}
			} else {
				key, err := bind.eval(ia.keyExpr, env)
				if err != nil {
					return err
				}
				pos, ok := tbl.lookup(ia.column, key)
				if ok {
					stats.IndexLookups++
					candidates = pos
				}
			}
		}
		tryRow := func(row []Value) error {
			stats.RowsScanned++
			env[lvl] = row
			for _, pred := range levelPreds[lvl] {
				v, err := bind.eval(pred, env)
				if err != nil {
					return err
				}
				if !v.Truthy() {
					return nil
				}
			}
			return walk(lvl + 1)
		}
		if candidates != nil || access[lvl] != nil && access[lvl].indexed {
			for _, p := range candidates {
				if err := tryRow(tbl.Rows[p]); err != nil {
					return err
				}
			}
			return nil
		}
		for _, row := range tbl.Rows {
			if err := tryRow(row); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(0); err != nil {
		return nil, stats, err
	}
	env = nil

	if stmt.Distinct {
		rs.Rows = dedupRows(rs.Rows)
	}
	if len(stmt.OrderBy) > 0 {
		if err := bind.orderRows(rs, stmt); err != nil {
			return nil, stats, err
		}
	}
	if stmt.Limit >= 0 && len(rs.Rows) > stmt.Limit {
		rs.Rows = rs.Rows[:stmt.Limit]
	}
	return rs, stats, nil
}

// binding resolves aliases and columns for one statement.
type binding struct {
	aliases []string
	tables  []*Table
	byAlias map[string]int
}

func newBinding(db *DB, stmt *SelectStmt) (*binding, error) {
	b := &binding{byAlias: make(map[string]int)}
	add := func(ref TableRef) error {
		tbl := db.Table(ref.Table)
		if tbl == nil {
			return fmt.Errorf("sql: unknown table %q", ref.Table)
		}
		alias := strings.ToLower(ref.Alias)
		if _, dup := b.byAlias[alias]; dup {
			return fmt.Errorf("sql: duplicate table alias %q", ref.Alias)
		}
		b.byAlias[alias] = len(b.tables)
		b.aliases = append(b.aliases, alias)
		b.tables = append(b.tables, tbl)
		return nil
	}
	for _, ref := range stmt.From {
		if err := add(ref); err != nil {
			return nil, err
		}
	}
	for _, j := range stmt.Joins {
		if err := add(j.Ref); err != nil {
			return nil, err
		}
	}
	if len(b.tables) == 0 {
		return nil, fmt.Errorf("sql: empty FROM clause")
	}
	return b, nil
}

// resolve maps a column reference to (table level, column position).
func (b *binding) resolve(c ColRef) (int, int, error) {
	if c.Qualifier != "" {
		lvl, ok := b.byAlias[strings.ToLower(c.Qualifier)]
		if !ok {
			return 0, 0, fmt.Errorf("sql: unknown alias %q", c.Qualifier)
		}
		col := b.tables[lvl].Schema.IndexOf(strings.ToLower(c.Column))
		if col < 0 {
			return 0, 0, fmt.Errorf("sql: table %s has no column %q", b.tables[lvl].Name, c.Column)
		}
		return lvl, col, nil
	}
	found := -1
	var foundCol int
	for lvl, tbl := range b.tables {
		if col := tbl.Schema.IndexOf(strings.ToLower(c.Column)); col >= 0 {
			if found >= 0 {
				return 0, 0, fmt.Errorf("sql: ambiguous column %q", c.Column)
			}
			found, foundCol = lvl, col
		}
	}
	if found < 0 {
		return 0, 0, fmt.Errorf("sql: unknown column %q", c.Column)
	}
	return found, foundCol, nil
}

// deepestLevel returns the highest table level referenced by e (0 for
// constant expressions).
func (b *binding) deepestLevel(e Expr) (int, error) {
	max := 0
	var visit func(Expr) error
	visit = func(e Expr) error {
		switch v := e.(type) {
		case ColRef:
			lvl, _, err := b.resolve(v)
			if err != nil {
				return err
			}
			if lvl > max {
				max = lvl
			}
		case BinOp:
			if err := visit(v.L); err != nil {
				return err
			}
			return visit(v.R)
		case UnOp:
			return visit(v.E)
		case InList:
			if err := visit(v.E); err != nil {
				return err
			}
			for _, x := range v.Vals {
				if err := visit(x); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := visit(e); err != nil {
		return 0, err
	}
	return max, nil
}

// indexAccess describes a hash-index probe for one nested-loop level.
// Either keyExpr (single probe) or keyList (multi-probe from an IN list)
// is set.
type indexAccess struct {
	column  string
	keyExpr Expr    // evaluated against earlier levels
	keyList []Value // literal IN-list probes
	indexed bool
}

// planInListAccess turns "tbl.col IN (literals...)" into a multi-probe.
func (b *binding) planInListAccess(lvl int, in InList) *indexAccess {
	c, ok := in.E.(ColRef)
	if !ok {
		return nil
	}
	clvl, ccol, err := b.resolve(c)
	if err != nil || clvl != lvl {
		return nil
	}
	colName := b.tables[lvl].Schema[ccol].Name
	if !b.tables[lvl].HasIndex(colName) {
		return nil
	}
	vals := make([]Value, 0, len(in.Vals))
	for _, ve := range in.Vals {
		lit, ok := ve.(Lit)
		if !ok {
			return nil
		}
		vals = append(vals, lit.V)
	}
	return &indexAccess{column: colName, keyList: vals, indexed: true}
}

// planIndexAccess finds an equality conjunct "tbl.col = key" (or an
// all-literal "tbl.col IN (...)") usable as an index probe at the given
// level.
func (b *binding) planIndexAccess(lvl int, preds []Expr) *indexAccess {
	tbl := b.tables[lvl]
	for _, p := range preds {
		if in, ok := p.(InList); ok && !in.Negate {
			if ia := b.planInListAccess(lvl, in); ia != nil {
				return ia
			}
			continue
		}
		bin, ok := p.(BinOp)
		if !ok || bin.Op != "=" {
			continue
		}
		try := func(colSide, keySide Expr) *indexAccess {
			c, ok := colSide.(ColRef)
			if !ok {
				return nil
			}
			clvl, ccol, err := b.resolve(c)
			if err != nil || clvl != lvl {
				return nil
			}
			keyLvl, err := b.deepestLevel(keySide)
			if err != nil {
				return nil
			}
			if _, isCol := keySide.(ColRef); !isCol {
				if _, isLit := keySide.(Lit); !isLit {
					return nil
				}
			}
			if keyLvl >= lvl {
				if _, isLit := keySide.(Lit); !isLit {
					return nil
				}
			}
			colName := tbl.Schema[ccol].Name
			if !tbl.HasIndex(colName) {
				return nil
			}
			return &indexAccess{column: colName, keyExpr: keySide, indexed: true}
		}
		if ia := try(bin.L, bin.R); ia != nil {
			return ia
		}
		if ia := try(bin.R, bin.L); ia != nil {
			return ia
		}
	}
	return nil
}

// eval evaluates e against the current environment (one row per level;
// levels above the current nesting depth are nil and must not be
// referenced, which the pushdown planner guarantees).
func (b *binding) eval(e Expr, env [][]Value) (Value, error) {
	return EvalExpr(e, func(c ColRef) (Value, error) {
		lvl, col, err := b.resolve(c)
		if err != nil {
			return Null(), err
		}
		if env[lvl] == nil {
			return Null(), fmt.Errorf("sql: internal: reference to unbound table %s", b.aliases[lvl])
		}
		return env[lvl][col], nil
	})
}

// projection builds the output column labels and a row projector.
func (b *binding) projection(stmt *SelectStmt) ([]string, func([][]Value) ([]Value, error), error) {
	if len(stmt.Select) == 0 { // SELECT *
		var cols []string
		type src struct{ lvl, col int }
		var srcs []src
		for lvl, tbl := range b.tables {
			for col, c := range tbl.Schema {
				label := c.Name
				if len(b.tables) > 1 {
					label = b.aliases[lvl] + "." + c.Name
				}
				cols = append(cols, label)
				srcs = append(srcs, src{lvl, col})
			}
		}
		return cols, func(env [][]Value) ([]Value, error) {
			row := make([]Value, len(srcs))
			for i, s := range srcs {
				row[i] = env[s.lvl][s.col]
			}
			return row, nil
		}, nil
	}
	cols := make([]string, len(stmt.Select))
	for i, item := range stmt.Select {
		switch {
		case item.As != "":
			cols[i] = item.As
		default:
			if c, ok := item.Expr.(ColRef); ok {
				if c.Qualifier != "" {
					cols[i] = c.Qualifier + "." + c.Column
				} else {
					cols[i] = c.Column
				}
			} else {
				cols[i] = fmt.Sprintf("col%d", i+1)
			}
		}
	}
	return cols, func(env [][]Value) ([]Value, error) {
		row := make([]Value, len(stmt.Select))
		for i, item := range stmt.Select {
			v, err := b.eval(item.Expr, env)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		return row, nil
	}, nil
}

func (b *binding) orderRows(rs *ResultSet, stmt *SelectStmt) error {
	// ORDER BY keys must be projected columns (by name) or positions.
	keyIdx := make([]int, len(stmt.OrderBy))
	for i, item := range stmt.OrderBy {
		c, ok := item.Expr.(ColRef)
		if !ok {
			if l, ok := item.Expr.(Lit); ok && l.V.K == KindInt {
				pos := int(l.V.I) - 1
				if pos < 0 || pos >= len(rs.Columns) {
					return fmt.Errorf("sql: ORDER BY position %d out of range", l.V.I)
				}
				keyIdx[i] = pos
				continue
			}
			return fmt.Errorf("sql: ORDER BY supports column names and positions")
		}
		name := c.Column
		if c.Qualifier != "" {
			name = c.Qualifier + "." + c.Column
		}
		found := -1
		for j, label := range rs.Columns {
			if strings.EqualFold(label, name) || strings.EqualFold(label, c.Column) ||
				(c.Qualifier == "" && strings.HasSuffix(strings.ToLower(label), "."+strings.ToLower(c.Column))) {
				found = j
				break
			}
		}
		if found < 0 {
			return fmt.Errorf("sql: ORDER BY column %q not in projection", name)
		}
		keyIdx[i] = found
	}
	var sortErr error
	sort.SliceStable(rs.Rows, func(a, bIdx int) bool {
		for k, pos := range keyIdx {
			cmp, err := rs.Rows[a][pos].Compare(rs.Rows[bIdx][pos])
			if err != nil {
				sortErr = err
				return false
			}
			if cmp != 0 {
				if stmt.OrderBy[k].Desc {
					return cmp > 0
				}
				return cmp < 0
			}
		}
		return false
	})
	return sortErr
}

func flattenAnd(e Expr, acc []Expr) []Expr {
	if bin, ok := e.(BinOp); ok && bin.Op == "and" {
		acc = flattenAnd(bin.L, acc)
		return flattenAnd(bin.R, acc)
	}
	return append(acc, e)
}

func dedupRows(rows [][]Value) [][]Value {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	var sb strings.Builder
	for _, row := range rows {
		sb.Reset()
		for _, v := range row {
			sb.WriteString(v.Key())
			sb.WriteByte(0)
		}
		k := sb.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, row)
		}
	}
	return out
}
