package relational

import (
	"strings"
	"sync/atomic"
)

// This file is the vectorized executor's dictionary-encoding support:
// predicates over dict-encoded string columns compare int32 codes (or a
// per-code boolean table) instead of full strings. Codes are first-seen
// ordered, not string-ordered, so equality shapes map a literal to its
// code once per batch, and every other shape (ordered comparisons, LIKE,
// IN) evaluates the predicate once per distinct dictionary value and then
// filters rows through the resulting code table.

// codeVec fetches a dict column's code vector, bitmap, and decode slice at
// filter time (cached plans outlive appends, so nothing is captured at
// plan time; see intVec/strVec). The decode slice stands in for the
// dictionary itself: a snapshot-pinned execution reads the frozen dvals
// header, never the live dictionary's growing vals slice or code map, so
// code resolution below scans the slice instead of probing the map.
func codeVec(a colAccess, st *execState) ([]int32, bitmap, []string) {
	c := &st.tabs[a.lvl].cols[a.col]
	return c.codes, c.null, c.dictVals()
}

// noCode is a sentinel that matches no row: real codes are non-negative,
// so filterEq with noCode selects nothing and filterNe selects every
// non-NULL row — exactly the semantics of comparing against a value the
// dictionary has never seen.
const noCode int32 = -1

// vecDictEq builds the kernels for "dictcol = literal" / "dictcol <>
// literal": the literal resolves to its code per batch (the dictionary may
// have grown since the last batch), then the typed int32 kernels run. The
// resolution is a linear scan over the decode slice — dict columns are
// low-cardinality by design, the scan runs once per batch, and unlike the
// dictionary's code map it is safe against a concurrently interning writer.
func vecDictEq(a colAccess, op string, k string) *vecPred {
	codeOf := func(vals []string) int32 {
		for i, v := range vals {
			if v == k {
				return int32(i)
			}
		}
		return noCode
	}
	return &vecPred{
		filterSel: func(st *execState, sel, dst []int32) []int32 {
			codes, nb, vals := codeVec(a, st)
			return filterCmp(codes, nb, op, codeOf(vals), sel, dst)
		},
		filterRange: func(st *execState, lo, hi int32, dst []int32) []int32 {
			codes, nb, vals := codeVec(a, st)
			return filterCmpRange(codes, nb, op, codeOf(vals), lo, hi, dst)
		},
	}
}

// codeTable is one cached evaluation of a predicate over the dictionary:
// pass[code] holds the predicate's verdict for that distinct value. It is
// rebuilt when the dictionary has grown past n (new values appended by
// live ingestion) and shared across concurrent executions through an
// atomic pointer.
type codeTable struct {
	n    int
	pass []bool
}

// vecDictTable builds the kernels for predicate shapes evaluated per
// distinct value: passFor fills pass[i] with the verdict for vals[i], and
// keepNull states whether NULL rows survive (the engine's NULL-sorts-first
// convention for < and <=, NOT IN semantics for negated lists). The cache
// is monotone: pass[i] depends only on vals[i] and vals is append-only, so
// a table built for a longer decode slice serves every shorter (older
// snapshot) execution — its extra entries simply go unread, since every
// code in an older column is below that snapshot's vals length.
func vecDictTable(a colAccess, keepNull bool, passFor func(vals []string, pass []bool)) *vecPred {
	var cache atomic.Pointer[codeTable]
	table := func(vals []string) []bool {
		n := len(vals)
		if t := cache.Load(); t != nil && t.n >= n {
			return t.pass
		}
		pass := make([]bool, n)
		passFor(vals, pass)
		cache.Store(&codeTable{n: n, pass: pass})
		return pass
	}
	return &vecPred{
		filterSel: func(st *execState, sel, dst []int32) []int32 {
			codes, nb, vals := codeVec(a, st)
			return filterCodeTable(codes, nb, table(vals), keepNull, sel, dst)
		},
		filterRange: func(st *execState, lo, hi int32, dst []int32) []int32 {
			codes, nb, vals := codeVec(a, st)
			return filterCodeTableRange(codes, nb, table(vals), keepNull, lo, hi, dst)
		},
	}
}

func filterCodeTable(codes []int32, nb bitmap, pass []bool, keepNull bool, sel, dst []int32) []int32 {
	if len(nb) == 0 {
		for _, r := range sel {
			if pass[codes[r]] {
				dst = append(dst, r)
			}
		}
		return dst
	}
	for _, r := range sel {
		if nullAt(nb, r) {
			if keepNull {
				dst = append(dst, r)
			}
			continue
		}
		if pass[codes[r]] {
			dst = append(dst, r)
		}
	}
	return dst
}

func filterCodeTableRange(codes []int32, nb bitmap, pass []bool, keepNull bool, lo, hi int32, dst []int32) []int32 {
	if len(nb) == 0 {
		for r := lo; r < hi; r++ {
			if pass[codes[r]] {
				dst = append(dst, r)
			}
		}
		return dst
	}
	for r := lo; r < hi; r++ {
		if nullAt(nb, r) {
			if keepNull {
				dst = append(dst, r)
			}
			continue
		}
		if pass[codes[r]] {
			dst = append(dst, r)
		}
	}
	return dst
}

// vecDictCmp routes "dictcol OP literal" to the right dict kernel: codes
// for equality shapes, a code table for ordered comparisons (codes carry
// no string order).
func vecDictCmp(a colAccess, op string, k string) *vecPred {
	switch op {
	case "=", "<>":
		return vecDictEq(a, op, k)
	default: // "<", "<=", ">", ">="
		keepNull := op == "<" || op == "<="
		return vecDictTable(a, keepNull, func(vals []string, pass []bool) {
			for i, v := range vals {
				pass[i] = cmpHolds(op, strings.Compare(v, k))
			}
		})
	}
}

// vecDictLike builds the kernel for "dictcol LIKE 'pattern'": the pattern
// runs once per distinct value instead of once per row.
func vecDictLike(a colAccess, pattern string) *vecPred {
	match := compileLikePattern(pattern)
	return vecDictTable(a, false, func(vals []string, pass []bool) {
		for i, v := range vals {
			pass[i] = match(v)
		}
	})
}

// vecDictIn builds the kernel for "dictcol [NOT] IN (literals...)". A NULL
// cell is a member of nothing: it passes exactly when the list is negated.
func vecDictIn(a colAccess, set map[string]struct{}, negate bool) *vecPred {
	return vecDictTable(a, negate, func(vals []string, pass []bool) {
		for i, v := range vals {
			_, member := set[v]
			pass[i] = member != negate
		}
	})
}
