package relational

import (
	"fmt"
	"testing"
)

// paramTestDB builds a table with an indexed id column, an int value
// column (with one NULL), and a name column.
func paramTestDB(t *testing.T, rows int) *DB {
	t.Helper()
	db := NewDB()
	tbl, err := db.CreateTable("items", Schema{
		{Name: "id", Kind: KindInt},
		{Name: "v", Kind: KindInt},
		{Name: "name", Kind: KindString},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= rows; i++ {
		v := Int(int64(i * 10))
		if i == 3 {
			v = Null()
		}
		if err := tbl.Insert([]Value{Int(int64(i)), v, Str(fmt.Sprintf("n%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.CreateIndex("id"); err != nil {
		t.Fatal(err)
	}
	return db
}

// paramStmt is "SELECT id FROM items WHERE id IN ?list0 AND v >= ?int1".
func paramStmt() *SelectStmt {
	return &SelectStmt{
		Select: []SelectItem{{Expr: ColRef{Qualifier: "i", Column: "id"}}},
		From:   []TableRef{{Table: "items", Alias: "i"}},
		Where: BinOp{Op: "and",
			L: ParamIDs{E: ColRef{Qualifier: "i", Column: "id"}, Slot: 0},
			R: BinOp{Op: ">=", L: ColRef{Qualifier: "i", Column: "v"}, R: Param{Slot: 1}},
		},
		Limit: -1,
	}
}

func idsOf(t *testing.T, rs *ResultSet) []int64 {
	t.Helper()
	var ids []int64
	for _, row := range rs.Rows {
		ids = append(ids, row[0].I)
	}
	return ids
}

// TestPreparedParamRebinding pins the core property of the parameter path:
// one compiled plan answers every binding correctly, including the empty
// list (matches nothing) and NULL cells (members of nothing, ordered
// before every value).
func TestPreparedParamRebinding(t *testing.T) {
	db := paramTestDB(t, 6)
	pr, err := db.Prepare(paramStmt())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		list []int64
		min  int64
		want []int64
	}{
		{[]int64{1, 2, 4}, 0, []int64{1, 2, 4}},
		{[]int64{1, 2, 4}, 25, []int64{4}},
		{[]int64{2, 3, 5}, 0, []int64{2, 3, 5}}, // v NULL at id 3: NULL >= 0 is false...
		{nil, 0, nil},                           // unbound list matches nothing
		{[]int64{99}, 0, nil},
	}
	// NULL ordering: NULL sorts before every value, so "v >= 0" drops the
	// NULL row; adjust the third case's expectation accordingly.
	cases[2].want = []int64{2, 5}
	for i, c := range cases {
		var p Params
		p.Lists[0] = c.list
		p.Ints[1] = c.min
		rs, _, err := pr.Query(&p)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		got := idsOf(t, rs)
		if len(got) != len(c.want) {
			t.Fatalf("case %d: got %v, want %v", i, got, c.want)
		}
		for j := range got {
			if got[j] != c.want[j] {
				t.Fatalf("case %d: got %v, want %v", i, got, c.want)
			}
		}
	}
}

// TestParamMatchesLiteralPlans asserts the parameter path returns exactly
// what the equivalent literal statement returns, across the index-probe,
// vectorized full-scan, and row-fallback shapes, on every batch-size
// boundary.
func TestParamMatchesLiteralPlans(t *testing.T) {
	origBS := BatchSize
	defer func() { BatchSize = origBS }()
	for _, bs := range []int{1, 3, 1024} {
		BatchSize = bs
		db := paramTestDB(t, 50)
		list := []int64{2, 3, 7, 19, 20, 21, 49}
		const min = 150

		// Parameterized: id list probes the index, v >= binds per call.
		pr, err := db.Prepare(paramStmt())
		if err != nil {
			t.Fatal(err)
		}
		var p Params
		p.Lists[0] = list
		p.Ints[1] = min
		prs, _, err := pr.Query(&p)
		if err != nil {
			t.Fatal(err)
		}

		// Literal equivalent through the parser path.
		lit := "SELECT i.id FROM items i WHERE i.id IN (2, 3, 7, 19, 20, 21, 49) AND i.v >= 150"
		lrs, err := db.Query(lit)
		if err != nil {
			t.Fatal(err)
		}
		got, want := idsOf(t, prs), idsOf(t, lrs)
		if len(got) != len(want) {
			t.Fatalf("batch %d: param %v, literal %v", bs, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("batch %d: param %v, literal %v", bs, got, want)
			}
		}

		// Unindexed variant forces the vectorized scan kernels for both
		// the membership and comparison parameters.
		stmt := paramStmt()
		stmt.Where = BinOp{Op: "and",
			L: ParamIDs{E: ColRef{Qualifier: "i", Column: "v"}, Slot: 0},
			R: BinOp{Op: ">=", L: ColRef{Qualifier: "i", Column: "id"}, R: Param{Slot: 1}},
		}
		pr2, err := db.Prepare(stmt)
		if err != nil {
			t.Fatal(err)
		}
		var p2 Params
		p2.Lists[0] = []int64{20, 70, 200, 490}
		p2.Ints[1] = 3
		rs2, _, err := pr2.Query(&p2)
		if err != nil {
			t.Fatal(err)
		}
		lrs2, err := db.Query("SELECT i.id FROM items i WHERE i.v IN (20, 70, 200, 490) AND i.id >= 3")
		if err != nil {
			t.Fatal(err)
		}
		got2, want2 := idsOf(t, rs2), idsOf(t, lrs2)
		if fmt.Sprint(got2) != fmt.Sprint(want2) {
			t.Fatalf("batch %d unindexed: param %v, literal %v", bs, got2, want2)
		}
	}
}

// TestParamSlotOutOfRange pins that a bad slot fails at compile time, not
// silently at execution.
func TestParamSlotOutOfRange(t *testing.T) {
	db := paramTestDB(t, 3)
	stmt := paramStmt()
	stmt.Where = BinOp{Op: ">=", L: ColRef{Qualifier: "i", Column: "v"}, R: Param{Slot: MaxParamSlots}}
	if _, err := db.Prepare(stmt); err == nil {
		t.Fatal("expected an out-of-range slot to fail Prepare")
	}
}
