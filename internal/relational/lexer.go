package relational

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokKind
	text string // for idents: original text; keywords matched case-insensitively
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lexSQL tokenizes a SQL string. Strings use single quotes with ”
// escaping. Identifiers may be qualified later by the parser via '.'.
func lexSQL(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.peek(1) == '-': // line comment
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case isIdentStart(rune(c)):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			l.emit(tokIdent, l.src[start:l.pos], start)
		case c >= '0' && c <= '9':
			start := l.pos
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
			l.emit(tokNumber, l.src[start:l.pos], start)
		case c == '\'':
			start := l.pos
			l.pos++
			var sb strings.Builder
			for {
				if l.pos >= len(l.src) {
					return nil, fmt.Errorf("sql: unterminated string at %d", start)
				}
				if l.src[l.pos] == '\'' {
					if l.peek(1) == '\'' { // escaped quote
						sb.WriteByte('\'')
						l.pos += 2
						continue
					}
					l.pos++
					break
				}
				sb.WriteByte(l.src[l.pos])
				l.pos++
			}
			l.emit(tokString, sb.String(), start)
		default:
			start := l.pos
			// multi-char operators first
			for _, op := range []string{"<=", ">=", "<>", "!="} {
				if strings.HasPrefix(l.src[l.pos:], op) {
					l.pos += 2
					l.emit(tokSymbol, op, start)
					goto next
				}
			}
			switch c {
			case '=', '<', '>', '(', ')', ',', '.', '*', '+', '-':
				l.pos++
				l.emit(tokSymbol, string(c), start)
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at %d", c, l.pos)
			}
		next:
		}
	}
	l.emit(tokEOF, "", l.pos)
	return l.toks, nil
}

func (l *lexer) peek(n int) byte {
	if l.pos+n < len(l.src) {
		return l.src[l.pos+n]
	}
	return 0
}

func (l *lexer) emit(k tokKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: pos})
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
