package relational

// SQL abstract syntax tree for the supported SELECT subset.

// SelectStmt is a parsed SELECT query.
type SelectStmt struct {
	Distinct bool
	Select   []SelectItem // empty means '*'
	From     []TableRef
	Joins    []Join // explicit JOIN ... ON clauses, applied after From
	Where    Expr   // nil when absent
	OrderBy  []OrderItem
	Limit    int // -1 when absent
}

// SelectItem is one projected expression with an optional alias.
type SelectItem struct {
	Expr Expr
	As   string
}

// TableRef is a table in the FROM list with its binding alias.
type TableRef struct {
	Table string
	Alias string // defaults to Table
}

// Join is an explicit inner join.
type Join struct {
	Ref TableRef
	On  Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Expr is a SQL expression node.
type Expr interface{ isExpr() }

// ColRef is a column reference, optionally qualified by a table alias.
type ColRef struct {
	Qualifier string // "" when unqualified
	Column    string
}

// Lit is a literal value.
type Lit struct{ V Value }

// BinOp is a binary operation. Op is one of:
// "=", "<>", "<", "<=", ">", ">=", "like", "and", "or".
type BinOp struct {
	Op   string
	L, R Expr
}

// UnOp is a unary operation; Op is "not".
type UnOp struct {
	Op string
	E  Expr
}

// InList is "expr [NOT] IN (v1, v2, ...)".
type InList struct {
	E      Expr
	Vals   []Expr
	Negate bool
}

// Param is a placeholder for an integer value bound at execution time
// through Params.Ints[Slot]. Parameters never appear in parsed SQL text;
// statement builders (the TBQL engine's logical-plan lowering) insert them
// so one compiled plan serves every execution, with the varying values
// bound per call instead of spliced into a fresh statement.
type Param struct {
	Slot int
	// Prune marks the parameter as an optional constraint: when the bound
	// value is zero, the top-level WHERE conjunct containing this parameter
	// is skipped entirely, as if the statement had been compiled without
	// it. This is how one compiled plan stands in for a family of plan
	// variants ("with floor" / "without floor") — the TBQL engine's
	// standing-query delta floor uses it. Prune applies only to conjuncts;
	// a pruned Param nested deeper in an expression still evaluates as the
	// literal zero.
	Prune bool
}

// ParamIDs is "expr IN <runtime ID list>": membership of an integer
// expression in the sorted unique []int64 bound at Params.Lists[Slot].
// An empty or unbound list matches nothing, like an empty IN list —
// unless Optional is set, in which case an unbound list constrains
// nothing: the conjunct is skipped at execution and an index access
// planned from it falls back to the access the level would otherwise use.
// Optional is how the TBQL engine collapses its per-binding-set plan
// variants into one compiled plan.
type ParamIDs struct {
	E        Expr
	Slot     int
	Optional bool
}

func (ColRef) isExpr()   {}
func (Lit) isExpr()      {}
func (BinOp) isExpr()    {}
func (UnOp) isExpr()     {}
func (InList) isExpr()   {}
func (Param) isExpr()    {}
func (ParamIDs) isExpr() {}

// MaxParamSlots is the number of parameter slots a statement may use.
const MaxParamSlots = 4

// Params carries one execution's bound parameter values. Lists must be
// sorted unique (the membership and index-probe paths rely on it). The
// zero value binds every integer slot to 0 and every list slot to the
// empty list.
type Params struct {
	Ints  [MaxParamSlots]int64
	Lists [MaxParamSlots][]int64
	// Snap, when non-nil, pins the execution to a published table
	// snapshot: every table read resolves through Snap.Table, so the
	// execution sees exactly the rows that existed when the snapshot was
	// captured even while the single writer appends to the live tables.
	// Nil executes against the live tables (the only-writer or
	// externally-locked paths).
	Snap *Snap
}
