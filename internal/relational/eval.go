package relational

import "fmt"

// EvalExpr evaluates a SQL/Cypher expression tree against an arbitrary
// column resolver. Both the relational executor and the graph engine use
// this single evaluator so that comparison, LIKE, and boolean semantics are
// identical across backends.
func EvalExpr(e Expr, resolve func(ColRef) (Value, error)) (Value, error) {
	switch v := e.(type) {
	case Lit:
		return v.V, nil
	case ColRef:
		return resolve(v)
	case UnOp:
		x, err := EvalExpr(v.E, resolve)
		if err != nil {
			return Null(), err
		}
		return Bool(!x.Truthy()), nil
	case InList:
		x, err := EvalExpr(v.E, resolve)
		if err != nil {
			return Null(), err
		}
		match := false
		for _, ve := range v.Vals {
			y, err := EvalExpr(ve, resolve)
			if err != nil {
				return Null(), err
			}
			if x.Equal(y) {
				match = true
				break
			}
		}
		return Bool(match != v.Negate), nil
	case BinOp:
		switch v.Op {
		case "and":
			l, err := EvalExpr(v.L, resolve)
			if err != nil {
				return Null(), err
			}
			if !l.Truthy() {
				return Bool(false), nil
			}
			r, err := EvalExpr(v.R, resolve)
			if err != nil {
				return Null(), err
			}
			return Bool(r.Truthy()), nil
		case "or":
			l, err := EvalExpr(v.L, resolve)
			if err != nil {
				return Null(), err
			}
			if l.Truthy() {
				return Bool(true), nil
			}
			r, err := EvalExpr(v.R, resolve)
			if err != nil {
				return Null(), err
			}
			return Bool(r.Truthy()), nil
		}
		l, err := EvalExpr(v.L, resolve)
		if err != nil {
			return Null(), err
		}
		r, err := EvalExpr(v.R, resolve)
		if err != nil {
			return Null(), err
		}
		switch v.Op {
		case "=":
			return Bool(l.Equal(r)), nil
		case "<>":
			if l.IsNull() || r.IsNull() {
				return Bool(false), nil
			}
			return Bool(!l.Equal(r)), nil
		case "like":
			if l.K != KindString || r.K != KindString {
				return Bool(false), nil
			}
			return Bool(Like(l.S, r.S)), nil
		case "+", "-":
			if l.K != KindInt || r.K != KindInt {
				return Null(), fmt.Errorf("relational: arithmetic requires integers")
			}
			if v.Op == "+" {
				return Int(l.I + r.I), nil
			}
			return Int(l.I - r.I), nil
		case "<", "<=", ">", ">=":
			cmp, err := l.Compare(r)
			if err != nil {
				return Null(), err
			}
			switch v.Op {
			case "<":
				return Bool(cmp < 0), nil
			case "<=":
				return Bool(cmp <= 0), nil
			case ">":
				return Bool(cmp > 0), nil
			default:
				return Bool(cmp >= 0), nil
			}
		}
		return Null(), fmt.Errorf("relational: unknown operator %q", v.Op)
	}
	return Null(), fmt.Errorf("relational: cannot evaluate %T", e)
}
