package relational

import (
	"reflect"
	"testing"
)

// newTestDB builds a small entities/events database mirroring the
// ThreatRaptor storage layout.
func newTestDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	ent, err := db.CreateTable("entities", Schema{
		{"id", KindInt}, {"kind", KindString}, {"name", KindString}, {"pid", KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	evt, err := db.CreateTable("events", Schema{
		{"id", KindInt}, {"subject_id", KindInt}, {"object_id", KindInt},
		{"op", KindString}, {"start_time", KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	entities := [][]Value{
		{Int(1), Str("proc"), Str("/bin/tar"), Int(100)},
		{Int(2), Str("file"), Str("/etc/passwd"), Null()},
		{Int(3), Str("file"), Str("/tmp/upload.tar"), Null()},
		{Int(4), Str("proc"), Str("/bin/bzip2"), Int(101)},
		{Int(5), Str("file"), Str("/tmp/upload.tar.bz2"), Null()},
	}
	for _, r := range entities {
		if err := ent.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	events := [][]Value{
		{Int(1), Int(1), Int(2), Str("read"), Int(10)},
		{Int(2), Int(1), Int(3), Str("write"), Int(20)},
		{Int(3), Int(4), Int(3), Str("read"), Int(30)},
		{Int(4), Int(4), Int(5), Str("write"), Int(40)},
	}
	for _, r := range events {
		if err := evt.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	for _, col := range []string{"id", "name"} {
		if err := ent.CreateIndex(col); err != nil {
			t.Fatal(err)
		}
	}
	for _, col := range []string{"subject_id", "object_id"} {
		if err := evt.CreateIndex(col); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func mustQuery(t *testing.T, db *DB, sql string) *ResultSet {
	t.Helper()
	rs, err := db.Query(sql)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return rs
}

func TestSelectStar(t *testing.T) {
	db := newTestDB(t)
	rs := mustQuery(t, db, "SELECT * FROM entities")
	if rs.Len() != 5 || len(rs.Columns) != 4 {
		t.Fatalf("rows=%d cols=%d", rs.Len(), len(rs.Columns))
	}
}

func TestWhereFilters(t *testing.T) {
	db := newTestDB(t)
	rs := mustQuery(t, db, "SELECT name FROM entities WHERE kind = 'file'")
	if rs.Len() != 3 {
		t.Fatalf("files = %d, want 3", rs.Len())
	}
	rs = mustQuery(t, db, "SELECT name FROM entities WHERE kind = 'proc' AND pid > 100")
	if rs.Len() != 1 || rs.Rows[0][0].S != "/bin/bzip2" {
		t.Fatalf("got %v", rs.Strings())
	}
	rs = mustQuery(t, db, "SELECT name FROM entities WHERE kind = 'proc' OR name LIKE '%upload%'")
	if rs.Len() != 4 {
		t.Fatalf("got %d rows: %v", rs.Len(), rs.Strings())
	}
	rs = mustQuery(t, db, "SELECT name FROM entities WHERE NOT kind = 'file'")
	if rs.Len() != 2 {
		t.Fatalf("got %d", rs.Len())
	}
	rs = mustQuery(t, db, "SELECT name FROM entities WHERE name NOT LIKE '%tar%'")
	if rs.Len() != 2 {
		t.Fatalf("got %v", rs.Strings())
	}
	rs = mustQuery(t, db, "SELECT id FROM events WHERE op IN ('read', 'execute')")
	if rs.Len() != 2 {
		t.Fatalf("got %v", rs.Strings())
	}
	rs = mustQuery(t, db, "SELECT id FROM events WHERE op NOT IN ('read')")
	if rs.Len() != 2 {
		t.Fatalf("got %v", rs.Strings())
	}
	rs = mustQuery(t, db, "SELECT id FROM events WHERE start_time >= 20 AND start_time <> 30")
	if rs.Len() != 2 {
		t.Fatalf("got %v", rs.Strings())
	}
}

func TestImplicitJoin(t *testing.T) {
	db := newTestDB(t)
	// The paper's monolithic query shape: entity, event, entity.
	rs := mustQuery(t, db, `
	  SELECT s.name, e.op, o.name
	  FROM entities s, events e, entities o
	  WHERE e.subject_id = s.id AND e.object_id = o.id
	    AND s.name LIKE '%/bin/tar%' AND e.op = 'write'`)
	if rs.Len() != 1 {
		t.Fatalf("rows = %d: %v", rs.Len(), rs.Strings())
	}
	want := []string{"/bin/tar", "write", "/tmp/upload.tar"}
	if !reflect.DeepEqual(rs.Strings()[0], want) {
		t.Fatalf("got %v, want %v", rs.Strings()[0], want)
	}
}

func TestExplicitJoin(t *testing.T) {
	db := newTestDB(t)
	rs := mustQuery(t, db, `
	  SELECT o.name FROM events e
	  JOIN entities o ON e.object_id = o.id
	  WHERE e.op = 'read' ORDER BY o.name`)
	got := rs.Strings()
	want := [][]string{{"/etc/passwd"}, {"/tmp/upload.tar"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestDistinctOrderLimit(t *testing.T) {
	db := newTestDB(t)
	rs := mustQuery(t, db, "SELECT DISTINCT op FROM events ORDER BY op")
	if !reflect.DeepEqual(rs.Strings(), [][]string{{"read"}, {"write"}}) {
		t.Fatalf("got %v", rs.Strings())
	}
	rs = mustQuery(t, db, "SELECT id FROM events ORDER BY id DESC LIMIT 2")
	if !reflect.DeepEqual(rs.Strings(), [][]string{{"4"}, {"3"}}) {
		t.Fatalf("got %v", rs.Strings())
	}
	rs = mustQuery(t, db, "SELECT id FROM events ORDER BY 1 LIMIT 1")
	if !reflect.DeepEqual(rs.Strings(), [][]string{{"1"}}) {
		t.Fatalf("got %v", rs.Strings())
	}
}

func TestProjectionAliases(t *testing.T) {
	db := newTestDB(t)
	rs := mustQuery(t, db, "SELECT name AS entity_name FROM entities LIMIT 1")
	if rs.Columns[0] != "entity_name" {
		t.Fatalf("columns = %v", rs.Columns)
	}
}

func TestIndexAccelerationUsed(t *testing.T) {
	db := newTestDB(t)
	_, stats, err := db.QueryStats(`
	  SELECT o.name FROM events e, entities o
	  WHERE e.object_id = o.id AND e.op = 'write'`)
	if err != nil {
		t.Fatal(err)
	}
	if stats.IndexLookups == 0 {
		t.Fatalf("join on indexed id should use the index: %+v", stats)
	}
	// Index probe avoids scanning every entity row per event.
	if stats.RowsScanned >= 4*5 {
		t.Fatalf("scanned %d rows, expected far fewer via index", stats.RowsScanned)
	}
}

func TestQueryErrors(t *testing.T) {
	db := newTestDB(t)
	for _, sql := range []string{
		"SELECT * FROM nosuch",
		"SELECT nosuchcol FROM entities",
		"SELECT e.name FROM entities x",          // unknown alias
		"SELECT id FROM entities, events",        // ambiguous column
		"SELECT * FROM entities WHERE",           // incomplete
		"SELECT * FROM entities WHERE kind = ",   // incomplete expr
		"SELECT * FROM entities LIMIT x",         // bad limit
		"SELECT * FROM entities e, events e",     // duplicate alias
		"SELECT * FROM entities ORDER BY nosuch", // unknown order key
		"FROM entities",                          // missing select
		"SELECT * FROM entities WHERE pid < 'b'", // type error in compare
	} {
		if _, err := db.Query(sql); err == nil {
			t.Errorf("Query(%q) should fail", sql)
		}
	}
}

func TestTrailingGarbageRejected(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Query("SELECT * FROM entities extra garbage here"); err == nil {
		t.Fatal("trailing tokens must be rejected")
	}
}

func TestInsertValidation(t *testing.T) {
	db := NewDB()
	tbl, _ := db.CreateTable("t", Schema{{"a", KindInt}, {"b", KindString}})
	if err := tbl.Insert([]Value{Int(1)}); err == nil {
		t.Error("arity mismatch must fail")
	}
	if err := tbl.Insert([]Value{Str("x"), Str("y")}); err == nil {
		t.Error("kind mismatch must fail")
	}
	if err := tbl.Insert([]Value{Null(), Str("y")}); err != nil {
		t.Errorf("NULL should be allowed: %v", err)
	}
	if _, err := db.CreateTable("t", nil); err == nil {
		t.Error("duplicate table must fail")
	}
	if err := tbl.CreateIndex("nosuch"); err == nil {
		t.Error("index on unknown column must fail")
	}
}

func TestIndexMaintainedAcrossInserts(t *testing.T) {
	db := NewDB()
	tbl, _ := db.CreateTable("t", Schema{{"k", KindString}, {"v", KindInt}})
	if err := tbl.CreateIndex("k"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		key := "a"
		if i%2 == 0 {
			key = "b"
		}
		if err := tbl.Insert([]Value{Str(key), Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	rs, stats, err := db.QueryStats("SELECT v FROM t WHERE k = 'a'")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 50 {
		t.Fatalf("rows = %d", rs.Len())
	}
	if stats.IndexLookups != 1 || stats.RowsScanned != 50 {
		t.Fatalf("index should serve the probe: %+v", stats)
	}
}

func TestStringEscaping(t *testing.T) {
	db := NewDB()
	tbl, _ := db.CreateTable("t", Schema{{"s", KindString}})
	if err := tbl.Insert([]Value{Str("it's")}); err != nil {
		t.Fatal(err)
	}
	rs := mustQuery(t, db, "SELECT s FROM t WHERE s = 'it''s'")
	if rs.Len() != 1 {
		t.Fatalf("quote escaping broken: %v", rs.Strings())
	}
}

func TestComments(t *testing.T) {
	db := newTestDB(t)
	rs := mustQuery(t, db, "SELECT id FROM events -- trailing comment\nWHERE op = 'read'")
	if rs.Len() != 2 {
		t.Fatalf("got %d", rs.Len())
	}
}
