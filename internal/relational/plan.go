package relational

import (
	"context"
	"fmt"
	"strings"
	"sync"
)

// This file is the query planner: a parsed SELECT is compiled once into a
// plan of closures that read the columnar storage directly — column
// references resolve to (level, column-position) at plan time, predicates
// specialize on the column kinds they touch (typed comparisons, prepared
// LIKE matchers, IN-list hash sets), and projection is a straight column
// gather. Execution then runs the closures with zero per-row name
// resolution and zero per-row allocation outside result rows.

// plan is a fully compiled SELECT, safe for concurrent reuse: all mutable
// execution state lives in execState (pooled across executions).
type plan struct {
	stmt       *SelectStmt
	tables     []*Table
	levelPreds [][]levelPred
	access     []*indexAccess
	// floors[lvl] holds the level's scan-floor conjuncts ("col >= bound"
	// over an int column); the full-scan path starts at the binary-searched
	// first in-range row when the column is ascending-sorted.
	floors [][]scanFloor
	// hashJoins[lvl], set only on full-scanned levels with a usable join
	// equality, is the level's adaptive hash-join candidate (see
	// hashjoin.go).
	hashJoins []*hashJoin
	cols      []string
	project   projFn

	statePool sync.Pool
}

// levelPred is one compiled WHERE conjunct attached to a nested-loop
// level: either a vectorized batch kernel (vec) or a row-at-a-time closure
// (row). Exactly one is set.
type levelPred struct {
	vec *vecPred
	row predFn
	// active, when non-nil, gates the predicate per execution: an inactive
	// predicate is skipped entirely, as if the statement had been compiled
	// without the conjunct (Optional ParamIDs with no bound list, Prune
	// Param bound to zero).
	active func(st *execState) bool
}

// isActive reports whether the predicate applies to this execution.
func (lp *levelPred) isActive(st *execState) bool {
	return lp.active == nil || lp.active(st)
}

// pruneGate returns the activity gate of a conjunct built around an
// optional parameter, or nil for always-active conjuncts. The gate is the
// runtime stand-in for the compile-time plan variants it replaces: one
// compiled plan carries every optional constraint and each execution keeps
// exactly the bound ones.
func pruneGate(e Expr) func(st *execState) bool {
	gate := func(pm Param) func(st *execState) bool {
		if !pm.Prune {
			return nil
		}
		slot, err := checkSlot(pm.Slot)
		if err != nil {
			return nil
		}
		return func(st *execState) bool { return st.params.Ints[slot] != 0 }
	}
	switch v := e.(type) {
	case ParamIDs:
		if v.Optional {
			slot, err := checkSlot(v.Slot)
			if err == nil {
				return func(st *execState) bool { return len(st.params.Lists[slot]) > 0 }
			}
		}
	case BinOp:
		if pm, ok := v.R.(Param); ok {
			if g := gate(pm); g != nil {
				return g
			}
		}
		if pm, ok := v.L.(Param); ok {
			if g := gate(pm); g != nil {
				return g
			}
		}
	}
	return nil
}

// scanFloor is one "col >= bound" (or "col > bound") conjunct over an int
// column, usable to narrow the level's full scan: when the column's values
// are ascending at execution time (dense event IDs, in-order timestamps),
// rows before the binary-searched first in-range position cannot satisfy
// the conjunct and are skipped wholesale. This is what makes delta-floored
// standing-query scans cost O(delta), not O(store). Purely a scan
// narrowing — the conjunct still runs as a filter, so an unsorted column
// just loses the shortcut, never correctness.
type scanFloor struct {
	col  int
	slot int   // parameter slot holding the bound, or -1 when lit is used
	lit  int64 // literal bound when slot < 0
	excl bool  // strict ">": the first in-range value is bound+1
}

// execState is the per-execution mutable state: the current row index of
// every nested-loop level, the per-level selection-vector buffers, and the
// work counters. States are pooled per plan so steady-state executions
// reuse the selection buffers.
type execState struct {
	rows  []int32
	sels  [][]int32
	stats ExecStats
	// tabs are the tables this execution reads, parallel to plan.tables:
	// the captured snapshot copies when params.Snap is set, the live
	// tables otherwise. Bound by bindTabs before the walk starts; every
	// compiled closure reads columns through tabs, never plan.tables.
	tabs []*Table
	// params are this execution's bound parameter values (zero when the
	// statement uses none); copied in by run, cleared on release. Held by
	// value so binding parameters never allocates.
	params Params
	// pendErr carries a row-predicate error out of the append-only filter
	// kernels; descend re-raises it before visiting any row.
	pendErr error
	// visits counts entries into each hash-join-candidate level this
	// execution; hjTabs holds the tables built once the thresholds trip.
	// Both are per-execution: the tables read snapshot-bound columns, so a
	// pooled state must never carry one into the next execution.
	visits []int32
	hjTabs []*hashJoinTable
	// ctx/done drive cooperative cancellation: done caches ctx.Done() so
	// the checkpoint fast path is a nil compare when no context (or a
	// never-cancelled one) is bound. tick amortizes the poll on the probe
	// loops.
	ctx  context.Context
	done <-chan struct{}
	tick uint32
}

// bindCtx attaches a context's cancellation signal to this execution.
func (st *execState) bindCtx(ctx context.Context) {
	if ctx == nil {
		return
	}
	st.ctx = ctx
	st.done = ctx.Done()
}

// checkCancel is the amortized cancellation checkpoint for index-probe
// loops: with no cancellable context bound it is a nil compare; otherwise
// it polls the done channel every 64 iterations.
func (st *execState) checkCancel() error {
	if st.done == nil {
		return nil
	}
	if st.tick++; st.tick&63 != 1 {
		return nil
	}
	select {
	case <-st.done:
		return st.ctx.Err()
	default:
		return nil
	}
}

// selbuf returns level lvl's selection buffer, empty, with capacity for at
// least n rows.
func (st *execState) selbuf(lvl, n int) []int32 {
	if cap(st.sels[lvl]) < n {
		st.sels[lvl] = make([]int32, 0, n)
	}
	return st.sels[lvl][:0]
}

func (p *plan) state() *execState {
	if st, ok := p.statePool.Get().(*execState); ok {
		st.stats = ExecStats{}
		st.pendErr = nil
		return st
	}
	return &execState{
		rows:   make([]int32, len(p.tables)),
		sels:   make([][]int32, len(p.tables)),
		tabs:   make([]*Table, len(p.tables)),
		visits: make([]int32, len(p.tables)),
		hjTabs: make([]*hashJoinTable, len(p.tables)),
	}
}

// bindTabs resolves the tables this execution reads: the snapshot copies
// when the parameters pin a snapshot, the live tables otherwise.
func (p *plan) bindTabs(st *execState) {
	if snap := st.params.Snap; snap != nil {
		for i, t := range p.tables {
			st.tabs[i] = snap.Table(t)
		}
		return
	}
	copy(st.tabs, p.tables)
}

// tableAt resolves one level's table for an execution that has no bound
// state yet (run's pre-walk sizing and the floor checks).
func (p *plan) tableAt(params *Params, lvl int) *Table {
	if params != nil && params.Snap != nil {
		return params.Snap.Table(p.tables[lvl])
	}
	return p.tables[lvl]
}

func (p *plan) release(st *execState) {
	st.params = Params{}
	for i := range st.tabs {
		st.tabs[i] = nil // do not pin a snapshot past the execution
		st.visits[i] = 0
		st.hjTabs[i] = nil // built over this execution's bound tables
	}
	st.ctx = nil
	st.done = nil
	st.tick = 0
	p.statePool.Put(st)
}

type evalFn func(st *execState) (Value, error)
type predFn func(st *execState) (bool, error)

// projFn fills dst (of projection width) with the output row for the
// current bindings. Callers hand out slab-backed slices so a batch of
// result rows costs one allocation, not one per row.
type projFn func(st *execState, dst []Value) error

// indexAccess describes a hash-index probe for one nested-loop level.
// Exactly one of keyFn (single probe, evaluated against earlier levels),
// keyList (multi-probe from a literal IN list), or listSlot >= 0
// (multi-probe from the parameter list bound at execution) is set.
type indexAccess struct {
	col      int
	keyFn    evalFn
	keyList  []Value
	listSlot int // -1 when not a parameter-list probe
	// optional marks a parameter-list probe planned from an Optional
	// ParamIDs conjunct: an execution with no bound list uses fallback
	// (the access the level would otherwise have, nil = full scan)
	// instead of probing an empty key set.
	optional bool
	fallback *indexAccess
	// litKey marks accesses keyed purely by literals (keyList, or keyFn
	// compiled from a literal). When the level also carries an active
	// parameter scan floor, the floor's suffix scan wins at execution: a
	// literal probe would visit matching rows from the whole history only
	// to discard everything below the floor, while the suffix holds
	// exactly the new rows.
	litKey bool
}

// binding resolves aliases and columns for one statement.
type binding struct {
	aliases []string
	tables  []*Table
	byAlias map[string]int
}

func newBinding(db *DB, stmt *SelectStmt) (*binding, error) {
	b := &binding{byAlias: make(map[string]int)}
	add := func(ref TableRef) error {
		tbl := db.Table(ref.Table)
		if tbl == nil {
			return fmt.Errorf("sql: unknown table %q", ref.Table)
		}
		alias := strings.ToLower(ref.Alias)
		if _, dup := b.byAlias[alias]; dup {
			return fmt.Errorf("sql: duplicate table alias %q", ref.Alias)
		}
		b.byAlias[alias] = len(b.tables)
		b.aliases = append(b.aliases, alias)
		b.tables = append(b.tables, tbl)
		return nil
	}
	for _, ref := range stmt.From {
		if err := add(ref); err != nil {
			return nil, err
		}
	}
	for _, j := range stmt.Joins {
		if err := add(j.Ref); err != nil {
			return nil, err
		}
	}
	if len(b.tables) == 0 {
		return nil, fmt.Errorf("sql: empty FROM clause")
	}
	return b, nil
}

// resolve maps a column reference to (table level, column position).
func (b *binding) resolve(c ColRef) (int, int, error) {
	if c.Qualifier != "" {
		lvl, ok := b.byAlias[strings.ToLower(c.Qualifier)]
		if !ok {
			return 0, 0, fmt.Errorf("sql: unknown alias %q", c.Qualifier)
		}
		col := b.tables[lvl].Schema.IndexOf(strings.ToLower(c.Column))
		if col < 0 {
			return 0, 0, fmt.Errorf("sql: table %s has no column %q", b.tables[lvl].Name, c.Column)
		}
		return lvl, col, nil
	}
	found := -1
	var foundCol int
	for lvl, tbl := range b.tables {
		if col := tbl.Schema.IndexOf(strings.ToLower(c.Column)); col >= 0 {
			if found >= 0 {
				return 0, 0, fmt.Errorf("sql: ambiguous column %q", c.Column)
			}
			found, foundCol = lvl, col
		}
	}
	if found < 0 {
		return 0, 0, fmt.Errorf("sql: unknown column %q", c.Column)
	}
	return found, foundCol, nil
}

// deepestLevel returns the highest table level referenced by e (0 for
// constant expressions).
func (b *binding) deepestLevel(e Expr) (int, error) {
	max := 0
	var visit func(Expr) error
	visit = func(e Expr) error {
		switch v := e.(type) {
		case ColRef:
			lvl, _, err := b.resolve(v)
			if err != nil {
				return err
			}
			if lvl > max {
				max = lvl
			}
		case BinOp:
			if err := visit(v.L); err != nil {
				return err
			}
			return visit(v.R)
		case UnOp:
			return visit(v.E)
		case InList:
			if err := visit(v.E); err != nil {
				return err
			}
			for _, x := range v.Vals {
				if err := visit(x); err != nil {
					return err
				}
			}
		case ParamIDs:
			return visit(v.E)
		}
		return nil
	}
	if err := visit(e); err != nil {
		return 0, err
	}
	return max, nil
}

// plan compiles a parsed SELECT against the database's current tables.
func (db *DB) plan(stmt *SelectStmt) (*plan, error) {
	b, err := newBinding(db, stmt)
	if err != nil {
		return nil, err
	}

	// Gather all filter conjuncts: WHERE plus every JOIN ... ON.
	var conjuncts []Expr
	if stmt.Where != nil {
		conjuncts = flattenAnd(stmt.Where, conjuncts)
	}
	for _, j := range stmt.Joins {
		conjuncts = flattenAnd(j.On, conjuncts)
	}

	// Attach each conjunct to the deepest table it references so it is
	// evaluated as early as possible (predicate pushdown).
	levelExprs := make([][]Expr, len(b.tables))
	for _, c := range conjuncts {
		lvl, err := b.deepestLevel(c)
		if err != nil {
			return nil, err
		}
		levelExprs[lvl] = append(levelExprs[lvl], c)
	}

	p := &plan{
		stmt:       stmt,
		tables:     b.tables,
		levelPreds: make([][]levelPred, len(b.tables)),
		access:     make([]*indexAccess, len(b.tables)),
		floors:     make([][]scanFloor, len(b.tables)),
		hashJoins:  make([]*hashJoin, len(b.tables)),
	}
	for lvl := range b.tables {
		ia, err := b.planIndexAccess(lvl, levelExprs[lvl])
		if err != nil {
			return nil, err
		}
		p.access[lvl] = ia
		if ia == nil {
			// No index serves this level: a join equality can still escape
			// the per-binding full scan through the adaptive hash join.
			p.hashJoins[lvl] = b.planHashJoin(lvl, levelExprs[lvl])
		}
		for _, e := range levelExprs[lvl] {
			if f, ok := b.planScanFloor(lvl, e); ok {
				p.floors[lvl] = append(p.floors[lvl], f)
			}
			act := pruneGate(e)
			if vp := b.compileVecPred(lvl, e); vp != nil {
				p.levelPreds[lvl] = append(p.levelPreds[lvl], levelPred{vec: vp, active: act})
				continue
			}
			pf, err := b.compilePred(e)
			if err != nil {
				return nil, err
			}
			p.levelPreds[lvl] = append(p.levelPreds[lvl], levelPred{row: pf, active: act})
		}
	}

	p.cols, p.project, err = b.compileProjection(stmt)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// planInListAccess turns "tbl.col IN (literals...)" into a multi-probe.
func (b *binding) planInListAccess(lvl int, in InList) *indexAccess {
	c, ok := in.E.(ColRef)
	if !ok {
		return nil
	}
	clvl, ccol, err := b.resolve(c)
	if err != nil || clvl != lvl {
		return nil
	}
	if b.tables[lvl].indexes[ccol].Load() == nil {
		return nil
	}
	vals := make([]Value, 0, len(in.Vals))
	for _, ve := range in.Vals {
		lit, ok := ve.(Lit)
		if !ok {
			return nil
		}
		vals = append(vals, lit.V)
	}
	return &indexAccess{col: ccol, keyList: vals, listSlot: -1, litKey: true}
}

// planParamIDsAccess turns "tbl.col IN <param list>" into a multi-probe
// whose keys are read from the bound parameter list at execution time.
func (b *binding) planParamIDsAccess(lvl int, pi ParamIDs) *indexAccess {
	c, ok := pi.E.(ColRef)
	if !ok {
		return nil
	}
	clvl, ccol, err := b.resolve(c)
	if err != nil || clvl != lvl {
		return nil
	}
	if b.tables[lvl].indexes[ccol].Load() == nil {
		return nil
	}
	slot, err := checkSlot(pi.Slot)
	if err != nil {
		return nil
	}
	return &indexAccess{col: ccol, listSlot: slot, optional: pi.Optional}
}

// planScanFloor recognizes "col >= bound" / "col > bound" conjuncts over
// an int column of this level whose bound is a literal or an integer
// parameter — the shapes the full-scan path can turn into a binary-searched
// scan start when the column is ascending-sorted (see scanFloor).
func (b *binding) planScanFloor(lvl int, e Expr) (scanFloor, bool) {
	bin, ok := e.(BinOp)
	if !ok || (bin.Op != ">=" && bin.Op != ">") {
		return scanFloor{}, false
	}
	c, ok := bin.L.(ColRef)
	if !ok {
		return scanFloor{}, false
	}
	clvl, ccol, err := b.resolve(c)
	if err != nil || clvl != lvl || b.tables[lvl].Schema[ccol].Kind != KindInt {
		return scanFloor{}, false
	}
	f := scanFloor{col: ccol, slot: -1, excl: bin.Op == ">"}
	switch r := bin.R.(type) {
	case Lit:
		if r.V.K != KindInt {
			return scanFloor{}, false
		}
		f.lit = r.V.I
	case Param:
		slot, err := checkSlot(r.Slot)
		if err != nil {
			return scanFloor{}, false
		}
		f.slot = slot
	default:
		return scanFloor{}, false
	}
	return f, true
}

// scanStart resolves the scan start of a full-scanned level for this
// execution: the largest lower bound across the level's active floors, or
// 0 when the column order does not admit the shortcut. params may be nil
// (every slot reads as zero).
func (p *plan) scanStart(params *Params, lvl int) int32 {
	var lo int32
	tbl := p.tableAt(params, lvl)
	for _, f := range p.floors[lvl] {
		k := f.lit
		if f.slot >= 0 {
			if params == nil {
				continue
			}
			k = params.Ints[f.slot]
		}
		if f.excl {
			if k == int64(^uint64(0)>>1) { // MaxInt64: "> max" admits nothing
				return int32(tbl.Len())
			}
			k++
		}
		if pos, ok := tbl.ascLowerBound(f.col, k); ok && pos > lo {
			lo = pos
		}
	}
	return lo
}

// paramFloorActive reports whether the level has a parameter-bound scan
// floor that is both bound and usable (ascending column) this execution —
// the signal that a suffix scan beats a literal-keyed index probe.
func (p *plan) paramFloorActive(params *Params, lvl int) bool {
	if params == nil {
		return false
	}
	for _, f := range p.floors[lvl] {
		if f.slot >= 0 && params.Ints[f.slot] > 0 {
			if _, ok := p.tableAt(params, lvl).ascLowerBound(f.col, 0); ok {
				return true
			}
		}
	}
	return false
}

// planIndexAccess finds an equality conjunct "tbl.col = key" (or an
// all-literal "tbl.col IN (...)", or a runtime parameter list) usable as
// an index probe at the given level. An Optional parameter-list access is
// returned with the level's next-best access attached as its runtime
// fallback, so one compiled plan serves bound and unbound executions.
func (b *binding) planIndexAccess(lvl int, preds []Expr) (*indexAccess, error) {
	var opt *indexAccess
	// pick resolves a usable access against the pending optional one:
	// optional parameter-list accesses are held back (returning nil)
	// while the scan continues for a guaranteed access to use as their
	// runtime fallback; the first guaranteed access wins, carrying the
	// pending optional in front of it when one exists. Guaranteed input
	// therefore always yields a non-nil result.
	pick := func(ia *indexAccess) *indexAccess {
		if ia.listSlot >= 0 && ia.optional {
			if opt == nil {
				opt = ia
			}
			return nil
		}
		if opt != nil {
			opt.fallback = ia
			return opt
		}
		return ia
	}
	tbl := b.tables[lvl]
	for _, p := range preds {
		if in, ok := p.(InList); ok && !in.Negate {
			if ia := b.planInListAccess(lvl, in); ia != nil {
				if got := pick(ia); got != nil {
					return got, nil
				}
			}
			continue
		}
		if pi, ok := p.(ParamIDs); ok {
			if ia := b.planParamIDsAccess(lvl, pi); ia != nil {
				if got := pick(ia); got != nil {
					return got, nil
				}
			}
			continue
		}
		bin, ok := p.(BinOp)
		if !ok || bin.Op != "=" {
			continue
		}
		try := func(colSide, keySide Expr) *indexAccess {
			c, ok := colSide.(ColRef)
			if !ok {
				return nil
			}
			clvl, ccol, err := b.resolve(c)
			if err != nil || clvl != lvl {
				return nil
			}
			keyLvl, err := b.deepestLevel(keySide)
			if err != nil {
				return nil
			}
			if _, isCol := keySide.(ColRef); !isCol {
				if _, isLit := keySide.(Lit); !isLit {
					return nil
				}
			}
			if keyLvl >= lvl {
				if _, isLit := keySide.(Lit); !isLit {
					return nil
				}
			}
			if tbl.indexes[ccol].Load() == nil {
				return nil
			}
			keyFn, err := b.compileEval(keySide)
			if err != nil {
				return nil
			}
			_, isLit := keySide.(Lit)
			return &indexAccess{col: ccol, keyFn: keyFn, listSlot: -1, litKey: isLit}
		}
		if ia := try(bin.L, bin.R); ia != nil {
			return pick(ia), nil // try() accesses are never optional
		}
		if ia := try(bin.R, bin.L); ia != nil {
			return pick(ia), nil
		}
	}
	return opt, nil
}

// compileEval compiles an expression to a closure with the exact
// semantics of EvalExpr (NULL rules, numeric-string equality leniency,
// comparison errors on kind mismatch).
func (b *binding) compileEval(e Expr) (evalFn, error) {
	switch v := e.(type) {
	case Lit:
		val := v.V
		return func(*execState) (Value, error) { return val, nil }, nil
	case Param:
		slot, err := checkSlot(v.Slot)
		if err != nil {
			return nil, err
		}
		return func(st *execState) (Value, error) {
			return Int(st.params.Ints[slot]), nil
		}, nil
	case ParamIDs:
		ef, err := b.compileEval(v.E)
		if err != nil {
			return nil, err
		}
		slot, err := checkSlot(v.Slot)
		if err != nil {
			return nil, err
		}
		return func(st *execState) (Value, error) {
			x, err := ef(st)
			if err != nil {
				return Null(), err
			}
			return Bool(x.K == KindInt && st.params.contains(slot, x.I)), nil
		}, nil
	case ColRef:
		lvl, col, err := b.resolve(v)
		if err != nil {
			return nil, err
		}
		return func(st *execState) (Value, error) {
			return st.tabs[lvl].cell(int(st.rows[lvl]), col), nil
		}, nil
	case UnOp:
		inner, err := b.compileEval(v.E)
		if err != nil {
			return nil, err
		}
		return func(st *execState) (Value, error) {
			x, err := inner(st)
			if err != nil {
				return Null(), err
			}
			return Bool(!x.Truthy()), nil
		}, nil
	case InList:
		ef, err := b.compileEval(v.E)
		if err != nil {
			return nil, err
		}
		vals := make([]evalFn, len(v.Vals))
		for i, ve := range v.Vals {
			if vals[i], err = b.compileEval(ve); err != nil {
				return nil, err
			}
		}
		negate := v.Negate
		return func(st *execState) (Value, error) {
			x, err := ef(st)
			if err != nil {
				return Null(), err
			}
			match := false
			for _, vf := range vals {
				y, err := vf(st)
				if err != nil {
					return Null(), err
				}
				if x.Equal(y) {
					match = true
					break
				}
			}
			return Bool(match != negate), nil
		}, nil
	case BinOp:
		l, err := b.compileEval(v.L)
		if err != nil {
			return nil, err
		}
		r, err := b.compileEval(v.R)
		if err != nil {
			return nil, err
		}
		switch op := v.Op; op {
		case "and":
			return func(st *execState) (Value, error) {
				lv, err := l(st)
				if err != nil {
					return Null(), err
				}
				if !lv.Truthy() {
					return Bool(false), nil
				}
				rv, err := r(st)
				if err != nil {
					return Null(), err
				}
				return Bool(rv.Truthy()), nil
			}, nil
		case "or":
			return func(st *execState) (Value, error) {
				lv, err := l(st)
				if err != nil {
					return Null(), err
				}
				if lv.Truthy() {
					return Bool(true), nil
				}
				rv, err := r(st)
				if err != nil {
					return Null(), err
				}
				return Bool(rv.Truthy()), nil
			}, nil
		case "=":
			return func(st *execState) (Value, error) {
				lv, rv, err := eval2(l, r, st)
				if err != nil {
					return Null(), err
				}
				return Bool(lv.Equal(rv)), nil
			}, nil
		case "<>":
			return func(st *execState) (Value, error) {
				lv, rv, err := eval2(l, r, st)
				if err != nil {
					return Null(), err
				}
				if lv.IsNull() || rv.IsNull() {
					return Bool(false), nil
				}
				return Bool(!lv.Equal(rv)), nil
			}, nil
		case "like":
			if lit, ok := v.R.(Lit); ok && lit.V.K == KindString {
				match := compileLikePattern(lit.V.S)
				return func(st *execState) (Value, error) {
					lv, err := l(st)
					if err != nil {
						return Null(), err
					}
					return Bool(lv.K == KindString && match(lv.S)), nil
				}, nil
			}
			return func(st *execState) (Value, error) {
				lv, rv, err := eval2(l, r, st)
				if err != nil {
					return Null(), err
				}
				if lv.K != KindString || rv.K != KindString {
					return Bool(false), nil
				}
				return Bool(Like(lv.S, rv.S)), nil
			}, nil
		case "+", "-":
			plus := op == "+"
			return func(st *execState) (Value, error) {
				lv, rv, err := eval2(l, r, st)
				if err != nil {
					return Null(), err
				}
				if lv.K != KindInt || rv.K != KindInt {
					return Null(), fmt.Errorf("relational: arithmetic requires integers")
				}
				if plus {
					return Int(lv.I + rv.I), nil
				}
				return Int(lv.I - rv.I), nil
			}, nil
		case "<", "<=", ">", ">=":
			op := op
			return func(st *execState) (Value, error) {
				lv, rv, err := eval2(l, r, st)
				if err != nil {
					return Null(), err
				}
				cmp, err := lv.Compare(rv)
				if err != nil {
					return Null(), err
				}
				return Bool(cmpHolds(op, cmp)), nil
			}, nil
		}
		return nil, fmt.Errorf("relational: unknown operator %q", v.Op)
	}
	return nil, fmt.Errorf("relational: cannot evaluate %T", e)
}

func eval2(l, r evalFn, st *execState) (Value, Value, error) {
	lv, err := l(st)
	if err != nil {
		return Value{}, Value{}, err
	}
	rv, err := r(st)
	if err != nil {
		return Value{}, Value{}, err
	}
	return lv, rv, nil
}

func cmpHolds(op string, cmp int) bool {
	switch op {
	case "<":
		return cmp < 0
	case "<=":
		return cmp <= 0
	case ">":
		return cmp > 0
	default:
		return cmp >= 0
	}
}

// compilePred compiles a boolean conjunct, specializing the typed hot
// shapes (column-vs-literal, column-vs-column, prepared LIKE, literal IN
// lists) to direct columnar reads.
func (b *binding) compilePred(e Expr) (predFn, error) {
	switch v := e.(type) {
	case BinOp:
		switch v.Op {
		case "and":
			l, err := b.compilePred(v.L)
			if err != nil {
				return nil, err
			}
			r, err := b.compilePred(v.R)
			if err != nil {
				return nil, err
			}
			return func(st *execState) (bool, error) {
				ok, err := l(st)
				if err != nil || !ok {
					return false, err
				}
				return r(st)
			}, nil
		case "or":
			l, err := b.compilePred(v.L)
			if err != nil {
				return nil, err
			}
			r, err := b.compilePred(v.R)
			if err != nil {
				return nil, err
			}
			return func(st *execState) (bool, error) {
				ok, err := l(st)
				if err != nil || ok {
					return ok, err
				}
				return r(st)
			}, nil
		case "=", "<>", "<", "<=", ">", ">=", "like":
			if p, ok := v.R.(Param); ok {
				if pf := b.specializeCmpParam(v.Op, v.L, p); pf != nil {
					return pf, nil
				}
			}
			if pf := b.specializeCmp(v); pf != nil {
				return pf, nil
			}
		}
	case UnOp:
		inner, err := b.compilePred(v.E)
		if err != nil {
			return nil, err
		}
		return func(st *execState) (bool, error) {
			ok, err := inner(st)
			return !ok, err
		}, nil
	case InList:
		if pf := b.specializeInList(v); pf != nil {
			return pf, nil
		}
	case ParamIDs:
		if pf := b.specializeParamIDs(v); pf != nil {
			return pf, nil
		}
	}
	ef, err := b.compileEval(e)
	if err != nil {
		return nil, err
	}
	return func(st *execState) (bool, error) {
		val, err := ef(st)
		if err != nil {
			return false, err
		}
		return val.Truthy(), nil
	}, nil
}

// colAccess is a resolved column read used by the specialized predicates.
type colAccess struct {
	tbl  *Table
	lvl  int
	col  int
	kind Kind
}

func (b *binding) colAccess(c ColRef) (colAccess, bool) {
	lvl, col, err := b.resolve(c)
	if err != nil {
		return colAccess{}, false
	}
	return colAccess{tbl: b.tables[lvl], lvl: lvl, col: col, kind: b.tables[lvl].Schema[col].Kind}, true
}

func (a colAccess) intAt(st *execState) (int64, bool) {
	row := int(st.rows[a.lvl])
	c := &st.tabs[a.lvl].cols[a.col]
	if len(c.null) > row>>6 && c.null.get(row) {
		return 0, true
	}
	return c.ints[row], false
}

func (a colAccess) strAt(st *execState) (string, bool) {
	row := int(st.rows[a.lvl])
	c := &st.tabs[a.lvl].cols[a.col]
	if len(c.null) > row>>6 && c.null.get(row) {
		return "", true
	}
	if c.dict != nil {
		return c.decode(c.codes[row]), false
	}
	return c.strs[row], false
}

// dictOf returns the column's dictionary, or nil for plain columns.
func (a colAccess) dictOf() *dictionary { return a.tbl.cols[a.col].dict }

// specializeCmp returns a typed predicate for column-vs-literal and
// column-vs-column comparisons where both sides share one kind, or nil
// when the shape needs the generic evaluator (mixed kinds keep EvalExpr's
// leniency and error semantics).
func (b *binding) specializeCmp(v BinOp) predFn {
	op := v.Op
	// Normalize literal-on-the-left to column-vs-literal with flipped op.
	l, r := v.L, v.R
	if _, isLit := l.(Lit); isLit {
		if _, isCol := r.(ColRef); isCol {
			l, r = r, l
			switch op {
			case "<":
				op = ">"
			case "<=":
				op = ">="
			case ">":
				op = "<"
			case ">=":
				op = "<="
			case "like":
				return nil // pattern on the left is not a column match
			}
		}
	}
	lc, ok := l.(ColRef)
	if !ok {
		return nil
	}
	la, ok := b.colAccess(lc)
	if !ok {
		return nil
	}
	switch rv := r.(type) {
	case Lit:
		if la.kind != rv.V.K {
			return nil
		}
		if la.kind == KindInt {
			k := rv.V.I
			switch op {
			case "=":
				return func(st *execState) (bool, error) {
					x, null := la.intAt(st)
					return !null && x == k, nil
				}
			case "<>":
				return func(st *execState) (bool, error) {
					x, null := la.intAt(st)
					return !null && x != k, nil
				}
			case "<", "<=", ">", ">=":
				op := op
				return func(st *execState) (bool, error) {
					x, null := la.intAt(st)
					if null {
						return cmpHolds(op, -1), nil // NULL sorts first
					}
					return cmpHolds(op, cmpInt(x, k)), nil
				}
			}
			return nil
		}
		k := rv.V.S
		switch op {
		case "=":
			return func(st *execState) (bool, error) {
				s, null := la.strAt(st)
				return !null && s == k, nil
			}
		case "<>":
			return func(st *execState) (bool, error) {
				s, null := la.strAt(st)
				return !null && s != k, nil
			}
		case "like":
			match := compileLikePattern(k)
			return func(st *execState) (bool, error) {
				s, null := la.strAt(st)
				return !null && match(s), nil
			}
		case "<", "<=", ">", ">=":
			op := op
			return func(st *execState) (bool, error) {
				s, null := la.strAt(st)
				if null {
					return cmpHolds(op, -1), nil
				}
				return cmpHolds(op, strings.Compare(s, k)), nil
			}
		}
		return nil
	case ColRef:
		ra, ok := b.colAccess(rv)
		if !ok || la.kind != ra.kind {
			return nil
		}
		if la.kind == KindInt {
			switch op {
			case "=":
				return func(st *execState) (bool, error) {
					x, nx := la.intAt(st)
					y, ny := ra.intAt(st)
					return !nx && !ny && x == y, nil
				}
			case "<>":
				return func(st *execState) (bool, error) {
					x, nx := la.intAt(st)
					y, ny := ra.intAt(st)
					return !nx && !ny && x != y, nil
				}
			case "<", "<=", ">", ">=":
				op := op
				return func(st *execState) (bool, error) {
					x, nx := la.intAt(st)
					y, ny := ra.intAt(st)
					return cmpHolds(op, nullCmp(nx, ny, func() int { return cmpInt(x, y) })), nil
				}
			}
			return nil
		}
		switch op {
		case "=":
			return func(st *execState) (bool, error) {
				x, nx := la.strAt(st)
				y, ny := ra.strAt(st)
				return !nx && !ny && x == y, nil
			}
		case "<>":
			return func(st *execState) (bool, error) {
				x, nx := la.strAt(st)
				y, ny := ra.strAt(st)
				return !nx && !ny && x != y, nil
			}
		case "like":
			return func(st *execState) (bool, error) {
				x, nx := la.strAt(st)
				y, ny := ra.strAt(st)
				return !nx && !ny && Like(x, y), nil
			}
		case "<", "<=", ">", ">=":
			op := op
			return func(st *execState) (bool, error) {
				x, nx := la.strAt(st)
				y, ny := ra.strAt(st)
				return cmpHolds(op, nullCmp(nx, ny, func() int { return strings.Compare(x, y) })), nil
			}
		}
	}
	return nil
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// nullCmp mirrors Value.Compare's NULL ordering: NULL sorts before
// everything and equals NULL.
func nullCmp(nx, ny bool, cmp func() int) int {
	switch {
	case nx && ny:
		return 0
	case nx:
		return -1
	case ny:
		return 1
	default:
		return cmp()
	}
}

// specializeInList compiles "col [NOT] IN (literals...)" over a same-kind
// literal list into a hash-set membership test, or nil for other shapes.
func (b *binding) specializeInList(v InList) predFn {
	c, ok := v.E.(ColRef)
	if !ok {
		return nil
	}
	a, ok := b.colAccess(c)
	if !ok {
		return nil
	}
	negate := v.Negate
	if a.kind == KindInt {
		set, ok := buildIntSet(v.Vals)
		if !ok {
			return nil
		}
		return func(st *execState) (bool, error) {
			x, null := a.intAt(st)
			if null {
				return negate, nil
			}
			_, member := set[x]
			return member != negate, nil
		}
	}
	set, ok := buildStrSet(v.Vals)
	if !ok {
		return nil
	}
	return func(st *execState) (bool, error) {
		s, null := a.strAt(st)
		if null {
			return negate, nil
		}
		_, member := set[s]
		return member != negate, nil
	}
}

// buildIntSet and buildStrSet turn an all-literal, single-kind IN list
// into a membership set; ok is false for any other list shape. Both the
// row-at-a-time and the vectorized IN paths build their sets here, so the
// two can never diverge on which lists qualify.
func buildIntSet(vals []Expr) (map[int64]struct{}, bool) {
	set := make(map[int64]struct{}, len(vals))
	for _, ve := range vals {
		lit, ok := ve.(Lit)
		if !ok || lit.V.K != KindInt {
			return nil, false
		}
		set[lit.V.I] = struct{}{}
	}
	return set, true
}

func buildStrSet(vals []Expr) (map[string]struct{}, bool) {
	set := make(map[string]struct{}, len(vals))
	for _, ve := range vals {
		lit, ok := ve.(Lit)
		if !ok || lit.V.K != KindString {
			return nil, false
		}
		set[lit.V.S] = struct{}{}
	}
	return set, true
}

// compileLikePattern prepares a matcher for a constant LIKE pattern,
// lowering the dominant shapes ('%sub%', 'pre%', '%suf', exact) to
// stdlib string primitives and falling back to the generic matcher.
func compileLikePattern(p string) func(string) bool {
	if !strings.ContainsAny(p, "%_") {
		return func(s string) bool { return s == p }
	}
	if len(p) >= 2 && p[0] == '%' && p[len(p)-1] == '%' {
		if mid := p[1 : len(p)-1]; !strings.ContainsAny(mid, "%_") {
			return func(s string) bool { return strings.Contains(s, mid) }
		}
	}
	if p[len(p)-1] == '%' {
		if pre := p[:len(p)-1]; !strings.ContainsAny(pre, "%_") {
			return func(s string) bool { return strings.HasPrefix(s, pre) }
		}
	}
	if p[0] == '%' {
		if suf := p[1:]; !strings.ContainsAny(suf, "%_") {
			return func(s string) bool { return strings.HasSuffix(s, suf) }
		}
	}
	return func(s string) bool { return likeMatch(s, p) }
}

// compileProjection builds the output column labels and a compiled row
// projector.
func (b *binding) compileProjection(stmt *SelectStmt) ([]string, projFn, error) {
	if len(stmt.Select) == 0 { // SELECT *
		var cols []string
		type src struct {
			lvl, col int
		}
		var srcs []src
		for lvl, tbl := range b.tables {
			for col, c := range tbl.Schema {
				label := c.Name
				if len(b.tables) > 1 {
					label = b.aliases[lvl] + "." + c.Name
				}
				cols = append(cols, label)
				srcs = append(srcs, src{lvl, col})
			}
		}
		return cols, func(st *execState, dst []Value) error {
			for i, s := range srcs {
				dst[i] = st.tabs[s.lvl].cell(int(st.rows[s.lvl]), s.col)
			}
			return nil
		}, nil
	}
	cols := make([]string, len(stmt.Select))
	fns := make([]evalFn, len(stmt.Select))
	for i, item := range stmt.Select {
		switch {
		case item.As != "":
			cols[i] = item.As
		default:
			if c, ok := item.Expr.(ColRef); ok {
				if c.Qualifier != "" {
					cols[i] = c.Qualifier + "." + c.Column
				} else {
					cols[i] = c.Column
				}
			} else {
				cols[i] = fmt.Sprintf("col%d", i+1)
			}
		}
		fn, err := b.compileEval(item.Expr)
		if err != nil {
			return nil, nil, err
		}
		fns[i] = fn
	}
	return cols, func(st *execState, dst []Value) error {
		for i, fn := range fns {
			v, err := fn(st)
			if err != nil {
				return err
			}
			dst[i] = v
		}
		return nil
	}, nil
}

func flattenAnd(e Expr, acc []Expr) []Expr {
	if bin, ok := e.(BinOp); ok && bin.Op == "and" {
		acc = flattenAnd(bin.L, acc)
		return flattenAnd(bin.R, acc)
	}
	return append(acc, e)
}
