package relational

import (
	"fmt"
	"strings"
	"sync"
)

// maxCachedPlans bounds the prepared-plan cache; when exceeded the cache
// is flushed wholesale (the workload's working set of distinct data-query
// texts is tiny, so a flush is a non-event).
const maxCachedPlans = 4096

// DB is a named collection of tables plus a prepared-plan cache: the TBQL
// engine issues the same small data-query texts over and over, so parsing
// and planning are done once per distinct SQL string.
type DB struct {
	tables map[string]*Table

	mu    sync.RWMutex
	plans map[string]*plan
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{
		tables: make(map[string]*Table),
		plans:  make(map[string]*plan),
	}
}

// CreateTable registers a new empty table.
func (db *DB) CreateTable(name string, schema Schema) (*Table, error) {
	key := strings.ToLower(name)
	if _, exists := db.tables[key]; exists {
		return nil, fmt.Errorf("relational: table %s already exists", name)
	}
	t := NewTable(name, schema)
	t.db = db
	db.tables[key] = t
	db.invalidatePlans()
	return t, nil
}

// Table returns the named table, or nil.
func (db *DB) Table(name string) *Table { return db.tables[strings.ToLower(name)] }

// Tables returns the number of tables.
func (db *DB) Tables() int { return len(db.tables) }

func (db *DB) invalidatePlans() {
	db.mu.Lock()
	db.plans = make(map[string]*plan)
	db.mu.Unlock()
}

// prepare returns the cached plan for sql, parsing and planning on a miss.
func (db *DB) prepare(sql string) (*plan, error) {
	db.mu.RLock()
	p := db.plans[sql]
	db.mu.RUnlock()
	if p != nil {
		return p, nil
	}
	stmt, err := ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	p, err = db.plan(stmt)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	if len(db.plans) >= maxCachedPlans {
		db.plans = make(map[string]*plan)
	}
	db.plans[sql] = p
	db.mu.Unlock()
	return p, nil
}
