package relational

import (
	"fmt"
	"reflect"
	"testing"
)

// newJoinDB builds a driver table and a deliberately index-free inner
// table, so a join's only access paths are the per-binding full scan and
// the adaptive hash-join fallback. Join-key values collide (many rows per
// key) and both sides carry NULLs in every join column.
func newJoinDB(t *testing.T, outer, inner int) *DB {
	t.Helper()
	db := NewDB()
	drv, err := db.CreateTable("drivers", Schema{
		{"id", KindInt}, {"key", KindInt}, {"skey", KindString}, {"numstr", KindString},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := db.CreateTable("rows", Schema{
		{"id", KindInt}, {"key", KindInt}, {"skey", KindString},
		{"dkey", KindString}, {"flag", KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rows.DictEncode("dkey"); err != nil {
		t.Fatal(err)
	}
	key := func(i int) int64 { return int64(i % 50) }
	for i := 0; i < outer; i++ {
		r := []Value{Int(int64(i)), Int(key(i)), Str(fmt.Sprintf("k%02d", key(i))), Str(fmt.Sprintf("%d", key(i)))}
		if i%17 == 0 {
			r[1], r[2] = Null(), Null()
		}
		if err := drv.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < inner; i++ {
		r := []Value{Int(int64(i)), Int(key(i)), Str(fmt.Sprintf("k%02d", key(i))),
			Str(fmt.Sprintf("k%02d", key(i))), Int(int64(i % 2))}
		if i%13 == 0 {
			r[1], r[2], r[3] = Null(), Null(), Null()
		}
		if err := rows.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := drv.CreateIndex("id"); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestHashJoinEquivalence pins the fallback's contract: with the
// thresholds forced low the hash path engages (HashJoinBuilds > 0) and
// returns row-for-row — including row order — exactly what the serial
// nested-loop scan returns, across int, plain-string, and dict-encoded
// join columns, NULL keys on both sides, extra level predicates, both
// conjunct orientations, and DISTINCT projection.
func TestHashJoinEquivalence(t *testing.T) {
	origRows, origProbes := HashJoinMinRows, HashJoinMinProbes
	defer func() { HashJoinMinRows, HashJoinMinProbes = origRows, origProbes }()

	db := newJoinDB(t, 60, 400)
	queries := []string{
		`SELECT d.id, r.id FROM drivers d, rows r WHERE r.key = d.key AND r.flag = 1`,
		`SELECT d.id, r.id FROM drivers d, rows r WHERE r.skey = d.skey`,
		`SELECT d.id, r.id FROM drivers d, rows r WHERE r.dkey = d.skey`,
		`SELECT d.id, r.id FROM drivers d, rows r WHERE d.key = r.key AND r.id < 300`,
		`SELECT DISTINCT r.skey FROM drivers d, rows r WHERE r.skey = d.skey`,
	}

	// Baseline: thresholds high enough that the fallback never trips.
	HashJoinMinRows, HashJoinMinProbes = 1<<30, 1<<30
	want := make([]*ResultSet, len(queries))
	for i, q := range queries {
		rs, st, err := db.QueryStats(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if st.HashJoinBuilds != 0 {
			t.Fatalf("query %d: hash join engaged under max thresholds", i)
		}
		if rs.Len() == 0 {
			t.Fatalf("query %d returned no rows; equivalence check would be vacuous", i)
		}
		want[i] = rs
	}

	// Forced: engage on the first outer binding.
	HashJoinMinRows, HashJoinMinProbes = 1, 1
	for i, q := range queries {
		rs, st, err := db.QueryStats(q)
		if err != nil {
			t.Fatalf("query %d (forced): %v", i, err)
		}
		if st.HashJoinBuilds == 0 {
			t.Errorf("query %d: hash join never engaged under min thresholds", i)
		}
		if !reflect.DeepEqual(rs.Rows, want[i].Rows) {
			t.Errorf("query %d: hash-join rows diverged from scan rows\ngot  %v\nwant %v",
				i, rs.Strings(), want[i].Strings())
		}
	}

	// Mixed-kind key: the column is int but the key expression yields a
	// numeric string. The generic evaluator's equality treats "7" = 7 as a
	// match, a leniency the typed hash table cannot reproduce, so every
	// probe must fall back to the scan — same rows either way.
	mixed := `SELECT d.id, r.id FROM drivers d, rows r WHERE r.key = d.numstr`
	HashJoinMinRows, HashJoinMinProbes = 1<<30, 1<<30
	wantMixed, _, err := db.QueryStats(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if wantMixed.Len() == 0 {
		t.Fatal("mixed-kind query returned no rows; leniency check would be vacuous")
	}
	HashJoinMinRows, HashJoinMinProbes = 1, 1
	gotMixed, st, err := db.QueryStats(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if st.IndexLookups != 0 {
		t.Errorf("mixed-kind probes should fall back to the scan, got %d lookups", st.IndexLookups)
	}
	if !reflect.DeepEqual(gotMixed.Rows, wantMixed.Rows) {
		t.Errorf("mixed-kind rows diverged\ngot  %v\nwant %v", gotMixed.Strings(), wantMixed.Strings())
	}
}

// TestHashJoinDeltaFloorSuppression pins the interaction with delta
// evaluation: when a parameterized scan floor narrows the level to a
// fresh suffix, hashing the full history would cost more than the
// remaining scans, so the build must not trigger.
func TestHashJoinDeltaFloorSuppression(t *testing.T) {
	origRows, origProbes := HashJoinMinRows, HashJoinMinProbes
	defer func() { HashJoinMinRows, HashJoinMinProbes = origRows, origProbes }()
	HashJoinMinRows, HashJoinMinProbes = 1, 1

	db := newJoinDB(t, 60, 400)
	// "SELECT d.id, r.id FROM drivers d, rows r
	//  WHERE r.key = d.key AND r.id >= ?int1" — the parameterized floor
	// shape the TBQL delta path compiles.
	stmt := &SelectStmt{
		Select: []SelectItem{
			{Expr: ColRef{Qualifier: "d", Column: "id"}},
			{Expr: ColRef{Qualifier: "r", Column: "id"}},
		},
		From: []TableRef{{Table: "drivers", Alias: "d"}, {Table: "rows", Alias: "r"}},
		Where: BinOp{Op: "and",
			L: BinOp{Op: "=", L: ColRef{Qualifier: "r", Column: "key"}, R: ColRef{Qualifier: "d", Column: "key"}},
			R: BinOp{Op: ">=", L: ColRef{Qualifier: "r", Column: "id"}, R: Param{Slot: 1}},
		},
		Limit: -1,
	}
	prep, err := db.Prepare(stmt)
	if err != nil {
		t.Fatal(err)
	}

	// Floor active at a deep suffix: the hash build stays off.
	var p Params
	p.Ints[1] = 390
	_, st, err := prep.Query(&p)
	if err != nil {
		t.Fatal(err)
	}
	if st.HashJoinBuilds != 0 {
		t.Errorf("build triggered despite an active delta floor (builds=%d)", st.HashJoinBuilds)
	}
	// Floor at zero scans everything: the build engages and the rows match
	// the serial scan of the same statement.
	p.Ints[1] = 0
	rs, st, err := prep.Query(&p)
	if err != nil {
		t.Fatal(err)
	}
	if st.HashJoinBuilds == 0 {
		t.Error("build suppressed with no active floor")
	}
	HashJoinMinRows, HashJoinMinProbes = 1<<30, 1<<30
	want, _, err := prep.Query(&p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs.Rows, want.Rows) {
		t.Errorf("floored hash-join rows diverged from scan rows")
	}
}
