package relational

import (
	"context"
	"fmt"
	"strings"
)

// This file is the bound-parameter execution path: a statement built with
// Param / ParamIDs placeholders compiles once into a Prepared plan, and
// each execution binds the varying values through a Params struct instead
// of splicing them into fresh SQL text. The TBQL engine's logical-plan
// lowering uses it for the scheduler's binding sets and the standing-query
// delta floor.

// Prepared is a compiled statement executable with per-call parameters.
// It is safe for concurrent use: all mutable execution state is per-call.
type Prepared struct {
	p *plan
}

// Prepare compiles a statement AST against the database's current tables.
// The plan survives row appends (column vectors are re-fetched per batch)
// but not schema changes.
func (db *DB) Prepare(stmt *SelectStmt) (*Prepared, error) {
	p, err := db.plan(stmt)
	if err != nil {
		return nil, err
	}
	return &Prepared{p: p}, nil
}

// Query executes the prepared plan with the given parameter bindings
// (nil binds every slot to its zero value).
func (pr *Prepared) Query(params *Params) (*ResultSet, ExecStats, error) {
	return pr.p.run(nil, params)
}

// QueryCtx is Query with cooperative cancellation: the executor polls
// ctx.Done() at batch boundaries and (amortized) in index-probe loops and
// returns ctx.Err() promptly once the context is cancelled. A nil or
// never-cancelled context adds no per-row work.
func (pr *Prepared) QueryCtx(ctx context.Context, params *Params) (*ResultSet, ExecStats, error) {
	return pr.p.run(ctx, params)
}

// Describe renders the physical plan for EXPLAIN output: one line per
// nested-loop level with its access path and filter counts.
func (pr *Prepared) Describe() string {
	p := pr.p
	refs := append([]TableRef(nil), p.stmt.From...)
	for _, j := range p.stmt.Joins {
		refs = append(refs, j.Ref)
	}
	var sb strings.Builder
	for lvl, tbl := range p.tables {
		alias := tbl.Name
		if lvl < len(refs) && refs[lvl].Alias != "" {
			alias = refs[lvl].Alias
		}
		access := "full scan"
		if ia := p.access[lvl]; ia != nil {
			col := tbl.Schema[ia.col].Name
			switch {
			case ia.listSlot >= 0:
				access = fmt.Sprintf("index multi-probe on %s from param list %d", col, ia.listSlot)
				if ia.optional {
					fb := "full scan"
					if ia.fallback != nil {
						fb = "index probe on " + tbl.Schema[ia.fallback.col].Name
					}
					access += " (optional; unbound -> " + fb + ")"
				}
			case ia.keyList != nil:
				access = fmt.Sprintf("index multi-probe on %s (%d keys)", col, len(ia.keyList))
			default:
				access = "index probe on " + col
			}
		}
		if n := len(p.floors[lvl]); n > 0 {
			access += fmt.Sprintf("; %d scan floor(s)", n)
		}
		vec, row := 0, 0
		for _, pred := range p.levelPreds[lvl] {
			if pred.vec != nil {
				vec++
			} else {
				row++
			}
		}
		fmt.Fprintf(&sb, "L%d %s %s: %s; %d vectorized + %d row filters\n",
			lvl, tbl.Name, alias, access, vec, row)
	}
	return sb.String()
}

func checkSlot(slot int) (int, error) {
	if slot < 0 || slot >= MaxParamSlots {
		return 0, fmt.Errorf("relational: parameter slot %d out of range", slot)
	}
	return slot, nil
}

// contains reports membership of k in the sorted unique list bound at
// slot; an unbound list contains nothing.
func (p *Params) contains(slot int, k int64) bool {
	return ContainsSortedInt64(p.Lists[slot], k)
}

// specializeParamIDs compiles "intcol IN <param list>" into a typed
// binary-search membership test, or nil when the expression is not a
// plain integer column.
func (b *binding) specializeParamIDs(v ParamIDs) predFn {
	c, ok := v.E.(ColRef)
	if !ok {
		return nil
	}
	a, ok := b.colAccess(c)
	if !ok || a.kind != KindInt {
		return nil
	}
	slot, err := checkSlot(v.Slot)
	if err != nil {
		return nil
	}
	return func(st *execState) (bool, error) {
		x, null := a.intAt(st)
		return !null && st.params.contains(slot, x), nil
	}
}

// specializeCmpParam compiles "intcol OP <param int>" into a typed
// comparison reading the bound value per row (the vectorized form reads it
// once per batch; see vecCmpParam).
func (b *binding) specializeCmpParam(op string, l Expr, r Param) predFn {
	lc, ok := l.(ColRef)
	if !ok {
		return nil
	}
	la, ok := b.colAccess(lc)
	if !ok || la.kind != KindInt {
		return nil
	}
	slot, err := checkSlot(r.Slot)
	if err != nil {
		return nil
	}
	switch op {
	case "=", "<>", "<", "<=", ">", ">=":
	default:
		return nil
	}
	return func(st *execState) (bool, error) {
		k := st.params.Ints[slot]
		x, null := la.intAt(st)
		if null {
			switch op {
			case "<", "<=":
				return true, nil // NULL sorts first
			}
			return false, nil
		}
		return cmpHolds(op, cmpInt(x, k)), nil
	}
}

// vecCmpParam is the batch kernel for "intcol OP <param int>": the bound
// value is read once per batch, then the literal comparison kernels run.
func vecCmpParam(a colAccess, op string, slot int) *vecPred {
	return &vecPred{
		filterSel: func(st *execState, sel, dst []int32) []int32 {
			col, nb := intVec(a, st)
			return filterCmp(col, nb, op, st.params.Ints[slot], sel, dst)
		},
		filterRange: func(st *execState, lo, hi int32, dst []int32) []int32 {
			col, nb := intVec(a, st)
			return filterCmpRange(col, nb, op, st.params.Ints[slot], lo, hi, dst)
		},
	}
}

// vecParamIDs is the batch kernel for "intcol IN <param list>": a
// binary-search membership test against the sorted unique bound list.
// NULL cells are members of nothing.
func vecParamIDs(a colAccess, slot int) *vecPred {
	return &vecPred{
		filterSel: func(st *execState, sel, dst []int32) []int32 {
			col, nb := intVec(a, st)
			if len(nb) == 0 {
				for _, r := range sel {
					if st.params.contains(slot, col[r]) {
						dst = append(dst, r)
					}
				}
				return dst
			}
			for _, r := range sel {
				if !nullAt(nb, r) && st.params.contains(slot, col[r]) {
					dst = append(dst, r)
				}
			}
			return dst
		},
		filterRange: func(st *execState, lo, hi int32, dst []int32) []int32 {
			col, nb := intVec(a, st)
			if len(nb) == 0 {
				for r := lo; r < hi; r++ {
					if st.params.contains(slot, col[r]) {
						dst = append(dst, r)
					}
				}
				return dst
			}
			for r := lo; r < hi; r++ {
				if !nullAt(nb, r) && st.params.contains(slot, col[r]) {
					dst = append(dst, r)
				}
			}
			return dst
		},
	}
}
