package relational

import (
	"fmt"
	"strings"
)

// Column describes one table column.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of columns.
type Schema []Column

// IndexOf returns the position of the named column, or -1.
func (s Schema) IndexOf(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Table is a heap of rows plus optional hash indexes on single columns.
type Table struct {
	Name    string
	Schema  Schema
	Rows    [][]Value
	indexes map[string]*hashIndex // column name -> index
}

// hashIndex maps a column value key to the row positions holding it.
type hashIndex struct {
	col  int
	rows map[string][]int
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema Schema) *Table {
	return &Table{Name: name, Schema: schema, indexes: make(map[string]*hashIndex)}
}

// Insert appends a row after validating arity and kinds (NULLs allowed in
// any column). Indexes are maintained incrementally.
func (t *Table) Insert(row []Value) error {
	if len(row) != len(t.Schema) {
		return fmt.Errorf("relational: table %s expects %d values, got %d", t.Name, len(t.Schema), len(row))
	}
	for i, v := range row {
		if v.K != KindNull && v.K != t.Schema[i].Kind {
			return fmt.Errorf("relational: table %s column %s expects kind %v, got %v",
				t.Name, t.Schema[i].Name, t.Schema[i].Kind, v.K)
		}
	}
	pos := len(t.Rows)
	t.Rows = append(t.Rows, row)
	for _, idx := range t.indexes {
		k := row[idx.col].Key()
		idx.rows[k] = append(idx.rows[k], pos)
	}
	return nil
}

// CreateIndex builds (or rebuilds) a hash index on the named column. The
// paper creates indexes on key attributes (file name, process executable
// name, source/destination IP) to speed up the search.
func (t *Table) CreateIndex(column string) error {
	col := t.Schema.IndexOf(column)
	if col < 0 {
		return fmt.Errorf("relational: table %s has no column %s", t.Name, column)
	}
	idx := &hashIndex{col: col, rows: make(map[string][]int)}
	for pos, row := range t.Rows {
		k := row[col].Key()
		idx.rows[k] = append(idx.rows[k], pos)
	}
	t.indexes[column] = idx
	return nil
}

// HasIndex reports whether column has a hash index.
func (t *Table) HasIndex(column string) bool {
	_, ok := t.indexes[column]
	return ok
}

// lookup returns the positions of rows whose column equals v, using the
// index. ok is false when the column is not indexed.
func (t *Table) lookup(column string, v Value) (positions []int, ok bool) {
	idx, ok := t.indexes[column]
	if !ok {
		return nil, false
	}
	return idx.rows[v.Key()], true
}

// Len returns the row count.
func (t *Table) Len() int { return len(t.Rows) }

// DB is a named collection of tables.
type DB struct {
	tables map[string]*Table
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{tables: make(map[string]*Table)} }

// CreateTable registers a new empty table.
func (db *DB) CreateTable(name string, schema Schema) (*Table, error) {
	key := strings.ToLower(name)
	if _, exists := db.tables[key]; exists {
		return nil, fmt.Errorf("relational: table %s already exists", name)
	}
	t := NewTable(name, schema)
	db.tables[key] = t
	return t, nil
}

// Table returns the named table, or nil.
func (db *DB) Table(name string) *Table { return db.tables[strings.ToLower(name)] }

// Tables returns the number of tables.
func (db *DB) Tables() int { return len(db.tables) }

// ResultSet is the output of a query: column labels plus rows.
type ResultSet struct {
	Columns []string
	Rows    [][]Value
}

// Len returns the number of result rows.
func (r *ResultSet) Len() int { return len(r.Rows) }

// Strings renders every row as a []string, for display and tests.
func (r *ResultSet) Strings() [][]string {
	out := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		s := make([]string, len(row))
		for j, v := range row {
			s[j] = v.String()
		}
		out[i] = s
	}
	return out
}
