package relational

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Column describes one table column.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of columns.
type Schema []Column

// IndexOf returns the position of the named column, or -1.
func (s Schema) IndexOf(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// col is one column's storage: a dense typed vector plus a null bitmap.
// Only the vector matching the declared kind is populated, so a table of
// n rows with k int columns and m string columns costs exactly
// n*(8k) + n*(16m) bytes of payload, laid out contiguously per column.
// A dictionary-encoded string column stores 4-byte codes instead of
// string headers; the distinct strings live once in the dictionary.
type col struct {
	kind Kind
	ints []int64
	strs []string
	null bitmap
	// dict, when non-nil, dictionary-encodes this string column: codes
	// holds one code per row and strs stays empty. Scans compare codes
	// (ints), projection decodes through dict.vals.
	dict  *dictionary
	codes []int32
	// dvals is set only on snapshot copies of dict-encoded columns: the
	// dict.vals slice header frozen at capture time. Snapshot reads decode
	// and resolve codes through it instead of the live dictionary, whose
	// vals slice and code map the single writer keeps growing.
	dvals []string
	// unsorted records that an int column has received a value smaller
	// than its predecessor. Until then the column is ascending-sorted and
	// range predicates over it (event-ID floors, time windows) can binary
	// search their scan start instead of scanning from row 0. Tracked
	// incrementally on append — one comparison per insert, never a scan.
	unsorted bool
}

// dictionary maps the distinct values of a low-cardinality string column
// to dense int32 codes. Codes are assigned in first-seen order and are not
// ordered like the strings they stand for, so only equality-shaped
// comparisons run on raw codes.
type dictionary struct {
	vals []string
	code map[string]int32
}

func newDictionary() *dictionary {
	return &dictionary{code: make(map[string]int32)}
}

// encode interns s, assigning a fresh code on first sight.
func (d *dictionary) encode(s string) int32 {
	if c, ok := d.code[s]; ok {
		return c
	}
	c := int32(len(d.vals))
	d.vals = append(d.vals, s)
	d.code[s] = c
	return c
}

// Cardinality returns the number of distinct values seen.
func (d *dictionary) Cardinality() int { return len(d.vals) }

// bitmap is a packed null bitmap (bit i set = row i is NULL). Word access
// is atomic: the single writer may set a bit in the word that also covers
// the last rows of a published snapshot, which a concurrent reader is
// scanning. The writer's plain read-modify-write stays safe (there is only
// one writer), but the store and the readers' loads must be atomic so the
// race detector — and weaker memory models — see a well-ordered word.
type bitmap []uint64

func (b bitmap) get(i int) bool {
	return atomic.LoadUint64(&b[i>>6])&(1<<(uint(i)&63)) != 0
}

func (b *bitmap) set(i int) {
	for len(*b) <= i>>6 {
		*b = append(*b, 0)
	}
	atomic.StoreUint64(&(*b)[i>>6], (*b)[i>>6]|1<<(uint(i)&63))
}

func (b *bitmap) grow(n int) {
	words := (n + 63) / 64
	for len(*b) < words {
		*b = append(*b, 0)
	}
}

// clearFrom zeroes every bit at position >= n: a row slot reused by a
// later append must not inherit a stale null bit from a rolled-back row.
func (b bitmap) clearFrom(n int) {
	w := n >> 6
	if w >= len(b) {
		return
	}
	atomic.StoreUint64(&b[w], b[w]&((1<<(uint(n)&63))-1))
	for i := w + 1; i < len(b); i++ {
		atomic.StoreUint64(&b[i], 0)
	}
}

// Table stores rows column-major: each column is a dense typed vector
// ([]int64 or []string) with a null bitmap, and hash indexes are
// kind-specialized (int64 or string keys) so neither inserts nor probes
// allocate a key representation.
type Table struct {
	Name   string
	Schema Schema
	cols   []col
	rows   int
	// indexes[i] is the hash index on column position i, or nil. The slots
	// are atomic because a restored table materializes its declared
	// indexes lazily (see RestoreIndexLazy): the writer installs the built
	// index while planner goroutines probe the same slots, and snapshot
	// copies share this backing array on purpose — a late-built index is
	// visible to earlier snapshots, whose probes trim positions to their
	// captured row count.
	indexes []atomic.Pointer[hashIndex]
	// lazy holds indexes declared by a restore but not yet built; the
	// writer materializes all of them immediately before its first
	// post-restore append, off the recovery critical path. Until then
	// queries plan (and run) scans over the restored rows.
	lazy []lazyIndex
	// db points back to the owning database (nil for standalone tables)
	// so index creation can invalidate cached plans that were compiled
	// without the index.
	db *DB
	// snapshot marks a captured copy (see snapInto): its column headers
	// are frozen, and index probes route through the shared indexes'
	// RWMutex with results trimmed to the captured row count.
	snapshot bool
}

// hashIndex is a kind-specialized hash index on a single column: int
// columns hash their raw int64, string columns their raw string. NULLs are
// not indexed (SQL equality never matches NULL, and every probe feeds a
// predicate re-check).
type hashIndex struct {
	col  int
	kind Kind
	ints map[int64][]int32
	strs map[string][]int32
	// dense, when non-nil, direct-addresses the position lists for int
	// keys in [1, len(dense)-1] — slot k holds key k's list, and a key in
	// that range is never stored in ints. RestoreIndexInt builds it for
	// dense-ID columns (entity/event IDs), where it replaces len(column)
	// map insertions with two array passes; keys appended later that fall
	// outside the range use the map as overflow.
	dense [][]int32
	// arena is the spare backing store new position lists are carved from
	// (see appendPos); most keys index a handful of rows, so the carved
	// capacity-4 lists make steady-state index maintenance allocation-free.
	arena []int32
	// mu orders the single writer's map mutations (add/remove) against
	// snapshot readers' probes (lookupBounded). The writer's own probes on
	// live tables stay lock-free: they run on the writer goroutine, which
	// cannot race its own mutations. Bulk loads never touch mu at all —
	// NewStore creates the indexes after the batch insert, so appendRow
	// sees nil indexes while loading.
	mu sync.RWMutex
}

func (ix *hashIndex) add(v Value, pos int32) {
	ix.mu.Lock()
	switch {
	case v.K == KindNull:
	case ix.kind == KindInt:
		if ix.inDense(v.I) {
			ix.dense[v.I] = ix.appendPos(ix.dense[v.I], pos)
		} else {
			ix.ints[v.I] = ix.appendPos(ix.ints[v.I], pos)
		}
	default:
		ix.strs[v.S] = ix.appendPos(ix.strs[v.S], pos)
	}
	ix.mu.Unlock()
}

// inDense reports whether an int key is direct-addressed by the dense
// slot array rather than the hash map.
func (ix *hashIndex) inDense(k int64) bool {
	return ix.dense != nil && k >= 1 && k < int64(len(ix.dense))
}

// intPositions returns the position list for an int key from whichever
// store holds it.
func (ix *hashIndex) intPositions(k int64) []int32 {
	if ix.inDense(k) {
		return ix.dense[k]
	}
	return ix.ints[k]
}

// remove pops position pos for value v from the index. Positions are
// appended in row order, so rollback unwinds them strictly from each
// list's tail; a list emptied by the pop has its key deleted.
func (ix *hashIndex) remove(v Value, pos int32) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	switch {
	case v.K == KindNull:
	case ix.kind == KindInt:
		if ix.inDense(v.I) {
			l := ix.dense[v.I]
			if n := len(l); n > 0 && l[n-1] == pos {
				// Keep the truncated header (and its capacity) in the slot;
				// an empty list reads the same as an absent key.
				ix.dense[v.I] = l[:n-1]
			}
			break
		}
		l := ix.ints[v.I]
		if n := len(l); n > 0 && l[n-1] == pos {
			if n == 1 {
				delete(ix.ints, v.I)
			} else {
				ix.ints[v.I] = l[:n-1]
			}
		}
	default:
		l := ix.strs[v.S]
		if n := len(l); n > 0 && l[n-1] == pos {
			if n == 1 {
				delete(ix.strs, v.S)
			} else {
				ix.strs[v.S] = l[:n-1]
			}
		}
	}
}

// appendPos appends to a position list; new lists are carved from the
// index's arena, lists that outgrow their carve fall back to ordinary
// doubling.
func (ix *hashIndex) appendPos(l []int32, pos int32) []int32 {
	if cap(l) == 0 {
		if cap(ix.arena) < 4 {
			ix.arena = make([]int32, 4096)
		}
		l = ix.arena[0:0:4]
		ix.arena = ix.arena[4:]
	}
	return append(l, pos)
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema Schema) *Table {
	t := &Table{Name: name, Schema: schema}
	t.cols = make([]col, len(schema))
	for i, c := range schema {
		t.cols[i].kind = c.Kind
	}
	t.indexes = make([]atomic.Pointer[hashIndex], len(schema))
	return t
}

// lazyIndex records an index declared by a restore for deferred
// construction. A positive denseMax is the RestoreIndexInt key bound
// valid for the restored rows (still valid at build time: the build
// runs before the first post-restore append lands).
type lazyIndex struct {
	column   string
	denseMax int64
}

// DictEncode switches the named string column to dictionary encoding.
// It must be called before any rows are inserted: existing plans could
// have compiled raw-string kernels against it. Intended for the
// low-cardinality discriminator columns (entity kind, event op) whose
// full-string comparisons otherwise dominate scan cost.
func (t *Table) DictEncode(column string) error {
	colIdx := t.Schema.IndexOf(column)
	if colIdx < 0 {
		return fmt.Errorf("relational: table %s has no column %s", t.Name, column)
	}
	c := &t.cols[colIdx]
	if c.kind != KindString {
		return fmt.Errorf("relational: column %s.%s is not a string column", t.Name, column)
	}
	if t.rows > 0 {
		return fmt.Errorf("relational: cannot dictionary-encode %s.%s after rows exist", t.Name, column)
	}
	if c.dict != nil {
		return nil
	}
	c.dict = newDictionary()
	if t.db != nil {
		t.db.invalidatePlans()
	}
	return nil
}

// DictEncoded reports whether the named column is dictionary-encoded.
func (t *Table) DictEncoded(column string) bool {
	colIdx := t.Schema.IndexOf(column)
	return colIdx >= 0 && t.cols[colIdx].dict != nil
}

// GrowCap sizes a reallocation: at least need, and at least double the
// current capacity, so a stream of append batches amortizes to O(1)
// copies per element instead of copying the whole store per batch. A cold
// vector (cap 0) gets exactly need, which keeps one-shot batch loads
// tight. It is the shared growth policy for columnar vectors here and the
// graph backend's arenas.
func GrowCap(cur, need int) int {
	if cur*2 > need {
		return cur * 2
	}
	return need
}

// Reserve preallocates column storage for n additional rows.
func (t *Table) Reserve(n int) {
	need := t.rows + n
	for i := range t.cols {
		c := &t.cols[i]
		switch c.kind {
		case KindInt:
			if cap(c.ints) < need {
				grown := make([]int64, len(c.ints), GrowCap(cap(c.ints), need))
				copy(grown, c.ints)
				c.ints = grown
			}
		case KindString:
			if c.dict != nil {
				if cap(c.codes) < need {
					grown := make([]int32, len(c.codes), GrowCap(cap(c.codes), need))
					copy(grown, c.codes)
					c.codes = grown
				}
				break
			}
			if cap(c.strs) < need {
				grown := make([]string, len(c.strs), GrowCap(cap(c.strs), need))
				copy(grown, c.strs)
				c.strs = grown
			}
		}
	}
}

func (t *Table) checkRow(row []Value) error {
	if len(row) != len(t.Schema) {
		return fmt.Errorf("relational: table %s expects %d values, got %d", t.Name, len(t.Schema), len(row))
	}
	for i, v := range row {
		if v.K != KindNull && v.K != t.Schema[i].Kind {
			return fmt.Errorf("relational: table %s column %s expects kind %v, got %v",
				t.Name, t.Schema[i].Name, t.Schema[i].Kind, v.K)
		}
	}
	return nil
}

func (t *Table) appendRow(row []Value) {
	if t.lazy != nil {
		// First post-restore append: build the deferred indexes now, over
		// exactly the restored rows, so incremental maintenance below and
		// on every later append keeps them complete.
		t.materializeLazy()
	}
	pos := int32(t.rows)
	for i, v := range row {
		c := &t.cols[i]
		switch c.kind {
		case KindInt:
			if n := len(c.ints); n > 0 && v.I < c.ints[n-1] {
				c.unsorted = true
			}
			c.ints = append(c.ints, v.I)
		case KindString:
			if c.dict != nil {
				c.codes = append(c.codes, c.dict.encode(v.S))
			} else {
				c.strs = append(c.strs, v.S)
			}
		}
		if v.K == KindNull {
			c.null.set(t.rows)
		}
		// A non-empty bitmap always covers every row, so the vectorized
		// kernels index it without a per-row length guard.
		if len(c.null) > 0 {
			c.null.grow(t.rows + 1)
		}
	}
	t.rows++
	for i := range t.indexes {
		if ix := t.indexes[i].Load(); ix != nil {
			ix.add(row[ix.col], pos)
		}
	}
}

// Insert appends a row after validating arity and kinds (NULLs allowed in
// any column). Indexes are maintained incrementally.
func (t *Table) Insert(row []Value) error {
	if err := t.checkRow(row); err != nil {
		return err
	}
	t.appendRow(row)
	return nil
}

// InsertBatch validates and appends many rows at once, reserving column
// capacity up front. On a validation error nothing is inserted.
func (t *Table) InsertBatch(rows [][]Value) error {
	for _, row := range rows {
		if err := t.checkRow(row); err != nil {
			return err
		}
	}
	t.Reserve(len(rows))
	for _, row := range rows {
		t.appendRow(row)
	}
	return nil
}

// decode resolves a dictionary code to its string: snapshot copies read
// the frozen dvals slice, live columns the dictionary's growing vals.
func (c *col) decode(code int32) string {
	if c.dvals != nil {
		return c.dvals[code]
	}
	return c.dict.vals[code]
}

// dictVals returns the decode slice snapshot reads resolve codes through
// (the frozen dvals on snapshot copies, the live vals otherwise).
func (c *col) dictVals() []string {
	if c.dvals != nil {
		return c.dvals
	}
	return c.dict.vals
}

// cell materializes the value at (row, col). Value is a small struct, so
// this performs no heap allocation.
func (t *Table) cell(row, col int) Value {
	c := &t.cols[col]
	if len(c.null) > row>>6 && c.null.get(row) {
		return Null()
	}
	switch c.kind {
	case KindInt:
		return Value{K: KindInt, I: c.ints[row]}
	case KindString:
		if c.dict != nil {
			return Value{K: KindString, S: c.decode(c.codes[row])}
		}
		return Value{K: KindString, S: c.strs[row]}
	}
	return Null()
}

// Row materializes row i as a []Value (for debugging and generic callers;
// the executor reads columns directly).
func (t *Table) Row(i int) []Value {
	row := make([]Value, len(t.cols))
	for c := range t.cols {
		row[c] = t.cell(i, c)
	}
	return row
}

// CreateIndex builds (or rebuilds) a hash index on the named column. The
// paper creates indexes on key attributes (file name, process executable
// name, source/destination IP) to speed up the search.
func (t *Table) CreateIndex(column string) error {
	col := t.Schema.IndexOf(column)
	if col < 0 {
		return fmt.Errorf("relational: table %s has no column %s", t.Name, column)
	}
	if t.db != nil {
		// Plans compiled before the index exists would scan forever.
		t.db.invalidatePlans()
	}
	ix := &hashIndex{col: col, kind: t.Schema[col].Kind}
	c := &t.cols[col]
	switch ix.kind {
	case KindInt:
		ix.ints = make(map[int64][]int32, t.rows)
		for pos, v := range c.ints {
			if len(c.null) > pos>>6 && c.null.get(pos) {
				continue
			}
			ix.ints[v] = append(ix.ints[v], int32(pos))
		}
	default:
		ix.strs = make(map[string][]int32, t.rows)
		if c.dict != nil {
			for pos, code := range c.codes {
				if len(c.null) > pos>>6 && c.null.get(pos) {
					continue
				}
				v := c.dict.vals[code]
				ix.strs[v] = append(ix.strs[v], int32(pos))
			}
			break
		}
		for pos, v := range c.strs {
			if len(c.null) > pos>>6 && c.null.get(pos) {
				continue
			}
			ix.strs[v] = append(ix.strs[v], int32(pos))
		}
	}
	t.indexes[col].Store(ix)
	t.dropLazy(column)
	return nil
}

// RestoreIndexLazy declares an index on the named column without
// building it. The build is deferred to the writer's first post-restore
// append (or an explicit CreateIndex), keeping index construction — the
// most expensive part of reopening a segment-backed store — off the
// recovery critical path; until then queries scan the restored rows.
// denseMax, when positive, promises the column's values all lie in
// [1, denseMax] so the deferred build can use RestoreIndexInt.
func (t *Table) RestoreIndexLazy(column string, denseMax int64) error {
	col := t.Schema.IndexOf(column)
	if col < 0 {
		return fmt.Errorf("relational: table %s has no column %s", t.Name, column)
	}
	if denseMax > 0 && t.Schema[col].Kind != KindInt {
		return fmt.Errorf("relational: column %s.%s is not an int column", t.Name, column)
	}
	t.lazy = append(t.lazy, lazyIndex{column: column, denseMax: denseMax})
	return nil
}

// materializeLazy builds every pending lazy index. Writer-side only.
func (t *Table) materializeLazy() {
	pending := t.lazy
	t.lazy = nil
	for _, li := range pending {
		// Column names were validated at declaration, so the builds cannot
		// fail; each builder invalidates cached scan plans itself.
		switch {
		case li.denseMax > 0:
			t.RestoreIndexInt(li.column, li.denseMax)
		case t.DictEncoded(li.column):
			t.RestoreIndexDict(li.column)
		default:
			t.CreateIndex(li.column)
		}
	}
}

// dropLazy removes any pending lazy declaration for column (it has just
// been built eagerly).
func (t *Table) dropLazy(column string) {
	for i := 0; i < len(t.lazy); {
		if t.lazy[i].column == column {
			t.lazy = append(t.lazy[:i], t.lazy[i+1:]...)
			continue
		}
		i++
	}
}

// ascLowerBound returns the first row position whose value in the int
// column at position col is >= k, when the column is ascending-sorted
// (no NULLs, never a decreasing append); ok is false otherwise.
// Sortedness is tracked incrementally on append, so the check is O(1) and
// the search O(log n).
func (t *Table) ascLowerBound(col int, k int64) (int32, bool) {
	c := &t.cols[col]
	if c.kind != KindInt || c.unsorted || len(c.null) > 0 {
		return 0, false
	}
	return int32(LowerBoundInt64(c.ints, k)), true
}

// LowerBoundInt64 is sort.Search specialized to "first element >= k"
// over an ascending []int64 (no interface indirection on the hot path).
// It is the one sorted-ID search shared by the scan floors and parameter
// membership here, the engine's view reads, and the graph backend's
// anchor intersection; ContainsSortedInt64 is the membership form.
func LowerBoundInt64(a []int64, k int64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ContainsSortedInt64 binary-searches a sorted unique []int64 for k.
func ContainsSortedInt64(a []int64, k int64) bool {
	i := LowerBoundInt64(a, k)
	return i < len(a) && a[i] == k
}

// HasIndex reports whether column has a hash index built.
func (t *Table) HasIndex(column string) bool {
	col := t.Schema.IndexOf(column)
	return col >= 0 && t.indexes[col].Load() != nil
}

// lookup returns the positions of rows whose column equals v, probing the
// kind-specialized index without allocating. ok is false when the column
// is not indexed. Probes whose value kind cannot equal the column kind
// return no rows (matching strict index-probe semantics). On a snapshot
// copy the probe is synchronized with the writer and trimmed to the
// snapshot's row count.
func (t *Table) lookup(col int, v Value) (positions []int32, ok bool) {
	ix := t.indexes[col].Load()
	if ix == nil {
		return nil, false
	}
	if t.snapshot {
		return ix.lookupBounded(v, int32(t.rows)), true
	}
	if v.K != ix.kind {
		return nil, true
	}
	if ix.kind == KindInt {
		return ix.intPositions(v.I), true
	}
	return ix.strs[v.S], true
}

// lookupBounded probes the index under its read lock and trims the result
// to positions < rows. The position lists are append-only in row order
// (rollback pops only positions at or above its mark, which is never below
// a published snapshot's row count), so the returned prefix is immutable
// and safe to use after the lock is released.
func (ix *hashIndex) lookupBounded(v Value, rows int32) []int32 {
	if v.K != ix.kind {
		return nil
	}
	ix.mu.RLock()
	var pos []int32
	if ix.kind == KindInt {
		pos = ix.intPositions(v.I)
	} else {
		pos = ix.strs[v.S]
	}
	// Binary-search the first position >= rows; everything before it was
	// present at capture time.
	lo, hi := 0, len(pos)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pos[mid] < rows {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	pos = pos[:lo]
	ix.mu.RUnlock()
	return pos
}

// Len returns the row count.
func (t *Table) Len() int { return t.rows }

// TruncateRows discards every row at position >= n, restoring the table to
// exactly n rows: index position lists pop the dropped rows from their
// tails, column vectors are cut back (dropped string headers are zeroed so
// the backing arrays stop pinning them), and null bits past the cut are
// cleared. It is the rollback half of the store's crash-consistent append;
// callers must not retain result sets referencing the dropped rows. The
// sorted-append shortcut flag is left as-is (conservative: a rollback may
// keep a column marked unsorted that became sorted again, costing only the
// binary-search fast path, never correctness).
func (t *Table) TruncateRows(n int) {
	if n < 0 {
		n = 0
	}
	if n >= t.rows {
		return
	}
	// Unwind the indexes first, while cell() still sees the dropped rows.
	// Pending lazy indexes need no unwinding: they build later from the
	// truncated columns.
	for i := range t.indexes {
		ix := t.indexes[i].Load()
		if ix == nil {
			continue
		}
		for pos := t.rows - 1; pos >= n; pos-- {
			ix.remove(t.cell(pos, ix.col), int32(pos))
		}
	}
	for i := range t.cols {
		c := &t.cols[i]
		switch c.kind {
		case KindInt:
			c.ints = c.ints[:n]
		case KindString:
			if c.dict != nil {
				// Strings interned by rolled-back rows stay in the
				// dictionary: harmless (nothing references their codes).
				c.codes = c.codes[:n]
				break
			}
			for r := n; r < len(c.strs); r++ {
				c.strs[r] = ""
			}
			c.strs = c.strs[:n]
		}
		c.null.clearFrom(n)
	}
	t.rows = n
}

// ResultSet is the output of a query: column labels plus rows.
type ResultSet struct {
	Columns []string
	Rows    [][]Value
}

// Len returns the number of result rows.
func (r *ResultSet) Len() int { return len(r.Rows) }

// Strings renders every row as a []string, for display and tests.
func (r *ResultSet) Strings() [][]string {
	out := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		s := make([]string, len(row))
		for j, v := range row {
			s[j] = v.String()
		}
		out[i] = s
	}
	return out
}
