package nlp

import "strings"

// Additional relation labels produced by clause attachment.
const (
	RelAcl   = "acl"   // clausal modifier of a noun (relative/gerund clause)
	RelAdvcl = "advcl" // adverbial clause ("by using ...")
)

const unattached = -2

// ParseDependencies builds a dependency tree over one sentence of tagged
// tokens. The parser is a deterministic shallow clause parser:
//
//  1. Noun-phrase pass: contiguous DET/ADJ/NUM/NOUN/PROPN runs become NPs
//     headed by their last noun-like token (det/amod/compound arcs).
//  2. Verb attachment: the first verb is the root; later verbs attach as
//     xcomp (to-infinitives), conj (coordination), acl (gerund or relative
//     clauses on a noun), or advcl (preposition + gerund).
//  3. Subjects: each finite verb takes the nearest preceding available NP
//     head or pronoun as nsubj, skipping auxiliaries and prepositional
//     phrases.
//  4. Objects: scanning right of each verb, the first NP head becomes
//     dobj; prepositions attach as prep with their NP head as pobj;
//     coordinated NPs chain via conj.
//
// The output satisfies the properties the IOC relation extraction
// algorithm needs: for a subject-verb-object assertion, the LCA of the two
// nominals is the verb (or the subject noun for acl clauses), and the
// connecting paths carry nsubj/dobj/pobj labels.
func ParseDependencies(toks []Token) *DepTree {
	n := len(toks)
	d := &DepTree{
		Tokens: toks,
		Head:   make([]int, n),
		Rel:    make([]string, n),
		Root:   -1,
	}
	for i := range d.Head {
		d.Head[i] = unattached
	}
	if n == 0 {
		return d
	}

	npHead := nounPhrasePass(d)
	verbs := verbIndexes(toks)

	// Root selection.
	switch {
	case len(verbs) > 0:
		d.Root = verbs[0]
	default:
		d.Root = fallbackRoot(toks, npHead)
	}
	d.Head[d.Root] = -1
	d.Rel[d.Root] = RelRoot

	// Clause pass, left to right: attach each verb, find its subject, then
	// consume its right side up to the next verb.
	for vi, v := range verbs {
		prevVerb := -1
		if vi > 0 {
			prevVerb = verbs[vi-1]
		}
		nextVerb := n
		if vi+1 < len(verbs) {
			nextVerb = verbs[vi+1]
		}
		skipSubject := attachVerb(d, npHead, v, prevVerb)
		if !skipSubject {
			findSubject(d, npHead, v)
		}
		consumeRight(d, npHead, v, nextVerb)
	}

	attachStragglers(d, verbs, npHead)
	return d
}

// nounPhrasePass links DET/ADJ/NUM/compound tokens to their NP head and
// returns npHead[i] = the head index of the NP containing i (or i itself
// when i is not in an NP).
func nounPhrasePass(d *DepTree) []int {
	toks := d.Tokens
	n := len(toks)
	npHead := make([]int, n)
	for i := range npHead {
		npHead[i] = i
	}
	inNP := func(t Tag) bool {
		return t == TagDet || t == TagAdj || t == TagNum || t.IsNounLike()
	}
	i := 0
	for i < n {
		if !inNP(toks[i].POS) {
			i++
			continue
		}
		j := i
		for j < n && inNP(toks[j].POS) {
			j++
		}
		// Head = last noun-like token of the run; if the run has no
		// noun-like token (pure DET/ADJ), each token stands alone.
		head := -1
		for k := j - 1; k >= i; k-- {
			if toks[k].POS.IsNounLike() {
				head = k
				break
			}
		}
		if head >= 0 {
			for k := i; k < j; k++ {
				npHead[k] = head
				if k == head {
					continue
				}
				switch toks[k].POS {
				case TagDet:
					d.Head[k], d.Rel[k] = head, RelDet
				case TagAdj:
					d.Head[k], d.Rel[k] = head, RelAmod
				case TagNum:
					d.Head[k], d.Rel[k] = head, RelAmod
				default:
					d.Head[k], d.Rel[k] = head, RelCompound
				}
			}
		}
		i = j
	}
	return npHead
}

func verbIndexes(toks []Token) []int {
	var verbs []int
	for i, t := range toks {
		if t.POS == TagVerb {
			verbs = append(verbs, i)
		}
	}
	if len(verbs) == 0 {
		// Copular sentences: promote the first AUX.
		for i, t := range toks {
			if t.POS == TagAux {
				return []int{i}
			}
		}
	}
	return verbs
}

func fallbackRoot(toks []Token, npHead []int) int {
	for i, t := range toks {
		if t.POS.IsNounLike() {
			return npHead[i]
		}
	}
	return 0
}

// attachVerb decides how verb v hangs off the existing structure and
// reports whether the subject scan should be skipped (clauses whose
// subject is structurally implied).
func attachVerb(d *DepTree, npHead []int, v, prevVerb int) (skipSubject bool) {
	if d.Head[v] == -1 { // root
		return false
	}
	toks := d.Tokens
	// Nearest preceding non-punct, non-adverb token.
	p := v - 1
	for p >= 0 && (toks[p].POS == TagPunct || toks[p].POS == TagAdv) {
		p--
	}
	if p < 0 {
		d.Head[v], d.Rel[v] = d.Root, RelConj
		return false
	}
	switch {
	case toks[p].POS == TagPart && lower(toks[p].Text) == "to":
		d.Head[p], d.Rel[p] = v, RelMark
		if prevVerb >= 0 {
			d.Head[v], d.Rel[v] = prevVerb, RelXcomp
		} else {
			d.Head[v], d.Rel[v] = d.Root, RelDep
		}
		return true // infinitive: subject inherited
	case toks[p].POS == TagAdp:
		// "by using ...": preposition + gerund forms an adverbial clause.
		d.Head[p], d.Rel[p] = v, RelMark
		if prevVerb >= 0 {
			d.Head[v], d.Rel[v] = prevVerb, RelAdvcl
		} else {
			d.Head[v], d.Rel[v] = d.Root, RelAdvcl
		}
		return true
	case toks[p].POS == TagCconj:
		d.Head[p], d.Rel[p] = v, RelCC
		if prevVerb >= 0 {
			d.Head[v], d.Rel[v] = prevVerb, RelConj
		} else {
			d.Head[v], d.Rel[v] = d.Root, RelConj
		}
		return true // coordinated verb shares the subject
	case toks[p].POS.IsNounLike() && strings.HasSuffix(lower(toks[v].Text), "ing"):
		// "process /usr/bin/gpg reading from ...": gerund clause on a noun.
		d.Head[v], d.Rel[v] = npHead[p], RelAcl
		return true // subject is the governing noun
	case toks[p].POS == TagPron && isRelativePron(toks[p].Text):
		// "..., which corresponds to ...": relative clause on the nearest
		// preceding noun.
		ant := antecedent(d, npHead, p)
		d.Head[p], d.Rel[p] = v, RelNsubj
		if ant >= 0 {
			d.Head[v], d.Rel[v] = ant, RelAcl
		} else {
			d.Head[v], d.Rel[v] = d.Root, RelConj
		}
		return true
	case toks[p].POS == TagAux:
		// Passive/progressive: the AUX attaches to v; v joins the clause
		// chain like a plain finite verb.
		d.Head[p], d.Rel[p] = v, RelAux
	}
	if prevVerb >= 0 {
		d.Head[v], d.Rel[v] = prevVerb, RelConj
	} else {
		d.Head[v], d.Rel[v] = d.Root, RelConj
	}
	return false
}

func isRelativePron(w string) bool {
	lw := lower(w)
	return lw == "which" || lw == "that" || lw == "who"
}

// antecedent finds the NP head preceding a relative pronoun.
func antecedent(d *DepTree, npHead []int, pron int) int {
	for j := pron - 1; j >= 0; j-- {
		switch d.Tokens[j].POS {
		case TagPunct:
			continue
		default:
			if d.Tokens[j].POS.IsNounLike() {
				return npHead[j]
			}
			return -1
		}
	}
	return -1
}

// findSubject scans left of verb v for its nsubj.
func findSubject(d *DepTree, npHead []int, v int) {
	toks := d.Tokens
	j := v - 1
	for j >= 0 {
		switch t := toks[j]; {
		case t.POS == TagAux, t.POS == TagAdv:
			j--
		case t.POS == TagPunct && t.Text == ",":
			j--
		case t.POS == TagPart:
			return // infinitive marker: no local subject
		case t.POS == TagCconj, t.POS == TagSconj, t.POS == TagVerb:
			return // clause boundary: subject is shared/elsewhere
		case t.POS == TagPron:
			if d.Head[j] == unattached {
				d.Head[j], d.Rel[j] = v, RelNsubj
			}
			return
		case t.POS.IsNounLike():
			h := npHead[j]
			// If the NP is governed by a preposition, skip the whole PP.
			start := npStart(d, npHead, h)
			if start > 0 && toks[start-1].POS == TagAdp {
				j = start - 2
				continue
			}
			if d.Head[h] == unattached {
				d.Head[h], d.Rel[h] = v, RelNsubj
			}
			return
		case t.POS == TagDet, t.POS == TagAdj, t.POS == TagNum:
			j-- // NP-internal token whose head sits to the right
		default:
			return
		}
	}
}

// npStart returns the first token index of the NP headed at h.
func npStart(d *DepTree, npHead []int, h int) int {
	start := h
	for start > 0 && npHead[start-1] == h {
		start--
	}
	return start
}

// consumeRight attaches the complement structure right of verb v, up to
// (not including) boundary.
func consumeRight(d *DepTree, npHead []int, v, boundary int) {
	toks := d.Tokens
	dobj := -1
	lastNP := -1
	j := v + 1
	for j < boundary {
		t := toks[j]
		switch {
		case t.POS == TagPunct:
			j++
		case t.POS == TagAdv:
			if d.Head[j] == unattached {
				d.Head[j], d.Rel[j] = v, RelAdvmod
			}
			j++
		case t.POS == TagPart:
			// "to"/"not" before the boundary verb belongs to that verb and
			// is claimed by attachVerb; otherwise attach here.
			if lower(t.Text) != "to" && d.Head[j] == unattached {
				d.Head[j], d.Rel[j] = v, RelAdvmod
			}
			j++
		case t.POS == TagAux:
			j++ // claimed by the following verb
		case t.POS == TagSconj:
			j++ // claimed as mark by the following clause
		case t.POS == TagAdp:
			// Preposition: attach to the verb; its object is the next NP.
			objHead, npEnd := nextNP(d, npHead, j+1, boundary)
			if objHead < 0 {
				// No NP before the boundary: gerund clause marker, claimed
				// by attachVerb of the next verb.
				j++
				continue
			}
			if d.Head[j] == unattached {
				d.Head[j], d.Rel[j] = v, RelPrep
			}
			if d.Head[objHead] == unattached {
				d.Head[objHead], d.Rel[objHead] = j, RelPobj
			}
			lastNP = objHead
			j = npEnd
		case t.POS == TagCconj:
			// Coordinated NP: conj chained on the previous nominal — but
			// only when the NP is not itself the subject of a following
			// verb ("X read A and Y wrote B": Y belongs to "wrote").
			objHead, npEnd := nextNP(d, npHead, j+1, boundary)
			if objHead < 0 {
				j++
				continue
			}
			if npEnd < len(toks) && (toks[npEnd].POS == TagVerb || toks[npEnd].POS == TagAux) {
				return // clause coordination: leave the NP for that verb
			}
			attachTo := lastNP
			if attachTo < 0 {
				attachTo = v
			}
			if d.Head[j] == unattached {
				d.Head[j], d.Rel[j] = objHead, RelCC
			}
			if d.Head[objHead] == unattached {
				if attachTo == v {
					d.Head[objHead], d.Rel[objHead] = v, RelDobj
				} else {
					d.Head[objHead], d.Rel[objHead] = attachTo, RelConj
				}
			}
			lastNP = objHead
			j = npEnd
		case t.POS.IsNounLike() || t.POS == TagDet || t.POS == TagAdj || t.POS == TagNum:
			h := npHead[j]
			npEnd := h + 1
			for npEnd < boundary && npHead[npEnd] == h {
				npEnd++
			}
			if d.Head[h] == unattached {
				if dobj < 0 {
					d.Head[h], d.Rel[h] = v, RelDobj
					dobj = h
				} else {
					d.Head[h], d.Rel[h] = v, RelDep
				}
			}
			lastNP = h
			j = npEnd
		case t.POS == TagPron:
			if d.Head[j] == unattached {
				if dobj < 0 {
					d.Head[j], d.Rel[j] = v, RelDobj
					dobj = j
				} else {
					d.Head[j], d.Rel[j] = v, RelDep
				}
			}
			lastNP = j
			j++
		default:
			j++
		}
	}
}

// nextNP finds the head and end of the next noun phrase at or after from.
func nextNP(d *DepTree, npHead []int, from, boundary int) (head, end int) {
	for j := from; j < boundary; j++ {
		t := d.Tokens[j].POS
		if t.IsNounLike() {
			h := npHead[j]
			e := h + 1
			for e < boundary && npHead[e] == h {
				e++
			}
			return h, e
		}
		if t == TagDet || t == TagAdj || t == TagNum || t == TagPunct {
			continue
		}
		return -1, from
	}
	return -1, from
}

// attachStragglers gives every remaining token a head.
func attachStragglers(d *DepTree, verbs []int, npHead []int) {
	toks := d.Tokens
	for i := range toks {
		if d.Head[i] != unattached {
			continue
		}
		switch toks[i].POS {
		case TagPunct:
			d.Head[i], d.Rel[i] = d.Root, RelPunct
		case TagAux:
			// Attach to the nearest following verb, else the root.
			target := d.Root
			for _, v := range verbs {
				if v > i {
					target = v
					break
				}
			}
			if target == i {
				target = d.Root
			}
			if target == i {
				d.Head[i], d.Rel[i] = -1, RelRoot
			} else {
				d.Head[i], d.Rel[i] = target, RelAux
			}
		default:
			if i != d.Root {
				d.Head[i], d.Rel[i] = d.Root, RelDep
			}
		}
	}
	// Safety: break any accidental self-loop.
	for i := range toks {
		if d.Head[i] == i {
			d.Head[i], d.Rel[i] = d.Root, RelDep
			if i == d.Root {
				d.Head[i] = -1
				d.Rel[i] = RelRoot
			}
		}
	}
}
