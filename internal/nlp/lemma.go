package nlp

import "strings"

// irregular maps irregular verb forms to their lemmas.
var irregular = map[string]string{
	"wrote": "write", "written": "write",
	"read": "read", "ran": "run", "run": "run",
	"sent": "send", "stole": "steal", "stolen": "steal",
	"got": "get", "gotten": "get", "made": "make",
	"took": "take", "taken": "take", "left": "leave",
	"sought": "seek", "was": "be", "were": "be", "is": "be",
	"are": "be", "been": "be", "being": "be", "am": "be",
	"has": "have", "had": "have", "did": "do", "does": "do",
	"went": "go", "gone": "go", "came": "come", "saw": "see",
	"seen": "see", "found": "find", "held": "hold", "kept": "keep",
	"led": "lead", "met": "meet", "put": "put", "set": "set",
	"began": "begin", "begun": "begin", "chose": "choose",
	"chosen": "choose", "gave": "give", "given": "give",
	"knew": "know", "known": "know", "grew": "grow", "grown": "grow",
}

// doubledConsonant recognizes CVC doubling before -ed/-ing
// ("transferred" → "transfer", "dropped" → "drop").
func undouble(stem string) string {
	n := len(stem)
	if n >= 2 && stem[n-1] == stem[n-2] && !isVowel(stem[n-1]) &&
		stem[n-1] != 'l' && stem[n-1] != 's' { // keep "install", "access"
		return stem[:n-1]
	}
	return stem
}

func isVowel(b byte) bool {
	switch b {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}

// knownLemma reports whether w is a base verb form in the lexicon, used to
// choose between candidate stems during verb lemmatization.
func knownLemma(w string) bool {
	tag, ok := lexicon[w]
	return ok && (tag == TagVerb || tag == TagAux)
}

// Lemma returns the dictionary form of a word given its POS tag. It is
// rule-based: an irregular-form table plus suffix stripping with e-restore
// and consonant undoubling.
func Lemma(word string, pos Tag) string {
	lw := strings.ToLower(word)
	if pos == TagPropn || pos == TagNum || pos == TagPunct {
		return word // indicators and numbers keep their exact form
	}
	if base, ok := irregular[lw]; ok {
		return base
	}
	if pos == TagVerb || pos == TagAux {
		return lemmaVerb(lw)
	}
	if pos == TagNoun {
		return lemmaNoun(lw)
	}
	return lw
}

func lemmaVerb(lw string) string {
	switch {
	case strings.HasSuffix(lw, "ies") && len(lw) > 4:
		return lw[:len(lw)-3] + "y" // copies → copy
	case strings.HasSuffix(lw, "sses"), strings.HasSuffix(lw, "shes"),
		strings.HasSuffix(lw, "ches"), strings.HasSuffix(lw, "xes"),
		strings.HasSuffix(lw, "zes"):
		return lw[:len(lw)-2] // accesses → access
	case strings.HasSuffix(lw, "s") && !strings.HasSuffix(lw, "ss") && len(lw) > 3:
		return lw[:len(lw)-1] // reads → read
	case strings.HasSuffix(lw, "ied") && len(lw) > 4:
		return lw[:len(lw)-3] + "y" // copied → copy
	case strings.HasSuffix(lw, "ed") && len(lw) > 3:
		stem := lw[:len(lw)-2]
		if knownLemma(stem) {
			return stem // opened → open
		}
		if knownLemma(stem + "e") {
			return stem + "e" // used → use
		}
		if u := undouble(stem); u != stem && knownLemma(u) {
			return u // dropped → drop
		}
		// Unknown stem: prefer e-restore for stems ending in typical
		// e-dropping clusters, else the bare stem.
		if strings.HasSuffix(stem, "at") || strings.HasSuffix(stem, "iz") ||
			strings.HasSuffix(stem, "dl") || strings.HasSuffix(stem, "v") {
			return stem + "e"
		}
		return undouble(stem)
	case strings.HasSuffix(lw, "ing") && len(lw) > 4:
		stem := lw[:len(lw)-3]
		if knownLemma(stem) {
			return stem
		}
		if knownLemma(stem + "e") {
			return stem + "e"
		}
		if u := undouble(stem); u != stem && knownLemma(u) {
			return u
		}
		return undouble(stem)
	}
	return lw
}

func lemmaNoun(lw string) string {
	switch {
	case strings.HasSuffix(lw, "ies") && len(lw) > 4:
		return lw[:len(lw)-3] + "y" // activities → activity
	case strings.HasSuffix(lw, "sses"), strings.HasSuffix(lw, "shes"),
		strings.HasSuffix(lw, "ches"), strings.HasSuffix(lw, "xes"):
		return lw[:len(lw)-2]
	case strings.HasSuffix(lw, "s") && !strings.HasSuffix(lw, "ss") &&
		!strings.HasSuffix(lw, "us") && len(lw) > 3:
		return lw[:len(lw)-1]
	}
	return lw
}
