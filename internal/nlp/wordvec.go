package nlp

import (
	"hash/fnv"
	"math"
	"strings"
	"sync"
)

// Vectors produces deterministic word embeddings from hashed character
// n-grams (3- and 4-grams of the padded lowercase word). Words sharing
// many character n-grams — morphological variants, re-spellings, related
// file names — get high cosine similarity, which is the property the IOC
// scan-and-merge step relies on (Step 8 of Algorithm 1, where the paper
// uses spaCy's vectors).
type Vectors struct {
	dim   int
	mu    sync.Mutex
	cache map[string][]float32
}

// NewVectors returns a vector table of the given dimensionality.
func NewVectors(dim int) *Vectors {
	if dim <= 0 {
		dim = 64
	}
	return &Vectors{dim: dim, cache: make(map[string][]float32)}
}

// Vector returns the (L2-normalized) embedding of w. Vectors are cached.
func (v *Vectors) Vector(w string) []float32 {
	lw := strings.ToLower(w)
	v.mu.Lock()
	if vec, ok := v.cache[lw]; ok {
		v.mu.Unlock()
		return vec
	}
	v.mu.Unlock()
	vec := v.compute(lw)
	v.mu.Lock()
	v.cache[lw] = vec
	v.mu.Unlock()
	return vec
}

func (v *Vectors) compute(lw string) []float32 {
	vec := make([]float32, v.dim)
	padded := "^" + lw + "$"
	addGram := func(g string) {
		h := fnv.New64a()
		h.Write([]byte(g))
		x := h.Sum64()
		idx := int(x % uint64(v.dim))
		sign := float32(1)
		if (x>>32)&1 == 1 {
			sign = -1
		}
		vec[idx] += sign
	}
	for n := 3; n <= 4; n++ {
		for i := 0; i+n <= len(padded); i++ {
			addGram(padded[i : i+n])
		}
	}
	// Whole-word gram anchors identical words at similarity 1 even when
	// short.
	addGram("word:" + lw)
	normalize(vec)
	return vec
}

func normalize(vec []float32) {
	var sum float64
	for _, x := range vec {
		sum += float64(x) * float64(x)
	}
	if sum == 0 {
		return
	}
	inv := float32(1 / math.Sqrt(sum))
	for i := range vec {
		vec[i] *= inv
	}
}

// Similarity returns the cosine similarity of the two words, in [-1, 1].
func (v *Vectors) Similarity(a, b string) float64 {
	va, vb := v.Vector(a), v.Vector(b)
	var dot float64
	for i := range va {
		dot += float64(va[i]) * float64(vb[i])
	}
	return dot
}
