package nlp

import (
	"strings"
	"unicode"
)

// lexicon maps lowercase word forms to their most likely tag. Context
// repair rules in TagTokens fix the systematic ambiguities (e.g. "the
// read" as a noun, "to" as particle vs preposition).
var lexicon = map[string]Tag{}

func addWords(tag Tag, words ...string) {
	for _, w := range words {
		lexicon[w] = tag
	}
}

func init() {
	addWords(TagDet,
		"the", "a", "an", "this", "that", "these", "those", "its", "his",
		"her", "their", "our", "your", "my", "each", "every", "some",
		"all", "both", "any", "no", "another", "such")
	addWords(TagPron,
		"it", "he", "she", "they", "we", "you", "i", "him", "them", "us",
		"who", "whom", "what", "itself", "himself", "themselves", "which")
	addWords(TagAdp,
		"of", "in", "on", "at", "from", "with", "by", "for", "into",
		"onto", "over", "under", "through", "via", "against", "during",
		"within", "across", "between", "behind", "toward", "towards",
		"upon", "without", "inside", "outside", "off", "back")
	addWords(TagCconj, "and", "or", "but", "nor")
	addWords(TagSconj,
		"after", "before", "when", "while", "because", "if", "since",
		"once", "as", "until", "where", "whereas", "although", "though")
	addWords(TagAux,
		"is", "are", "was", "were", "be", "been", "being", "am",
		"has", "have", "had", "having", "does", "do", "did",
		"will", "would", "can", "could", "may", "might", "must",
		"should", "shall")
	addWords(TagPart, "to", "not", "n't")
	addWords(TagAdv,
		"then", "finally", "first", "next", "also", "remotely", "locally",
		"subsequently", "later", "directly", "again", "already", "soon",
		"there", "here", "now", "mainly", "further", "instead", "thus",
		"however", "moreover", "still", "even", "just", "only")
	addWords(TagAdj,
		"malicious", "sensitive", "valuable", "important", "remote",
		"local", "initial", "direct", "notorious", "clear", "public",
		"known", "new", "multiple", "several", "various", "own", "same",
		"different", "common", "suspicious", "infected", "vulnerable",
		"zero-day", "second", "third", "final", "following", "gathered",
		"zipped", "encoded", "compromised", "lateral")
	// Verbs, including the inflections that appear in OSCTI prose.
	addWords(TagVerb,
		"use", "used", "uses", "using",
		"read", "reads", "reading",
		"write", "writes", "wrote", "written", "writing",
		"download", "downloads", "downloaded", "downloading",
		"upload", "uploads", "uploaded", "uploading",
		"execute", "executes", "executed", "executing",
		"run", "runs", "ran", "running",
		"launch", "launches", "launched", "launching",
		"connect", "connects", "connected", "connecting",
		"send", "sends", "sent", "sending",
		"receive", "receives", "received", "receiving",
		"leak", "leaks", "leaked", "leaking",
		"steal", "steals", "stole", "stolen", "stealing",
		"compress", "compresses", "compressed", "compressing",
		"encrypt", "encrypts", "encrypted", "encrypting",
		"decrypt", "decrypts", "decrypted",
		"scan", "scans", "scanned", "scanning",
		"copy", "copies", "copied", "copying",
		"transfer", "transfers", "transferred", "transferring",
		"gather", "gathers", "gathering",
		"exploit", "exploits", "exploited", "exploiting",
		"penetrate", "penetrates", "penetrated",
		"infect", "infects", "infecting",
		"install", "installs", "installed", "installing",
		"create", "creates", "created", "creating",
		"open", "opens", "opened", "opening",
		"access", "accesses", "accessed", "accessing",
		"modify", "modifies", "modified", "modifying",
		"delete", "deletes", "deleted", "deleting",
		"spawn", "spawns", "spawned",
		"drop", "drops", "dropped", "dropping",
		"fetch", "fetches", "fetched",
		"extract", "extracts", "extracted", "extracting",
		"attempt", "attempts", "attempted", "attempting",
		"leverage", "leverages", "leveraged", "leveraging",
		"correspond", "corresponds", "corresponded",
		"involve", "involves", "involved", "involving",
		"include", "includes", "included", "including",
		"contain", "contains", "contained", "containing",
		"establish", "establishes", "established",
		"maintain", "maintains", "maintained",
		"obtain", "obtains", "obtained",
		"perform", "performs", "performed", "performing",
		"utilize", "utilizes", "utilized", "utilizing",
		"encode", "encodes",
		"decode", "decodes", "decoded",
		"get", "gets", "got", "gotten", "getting",
		"make", "makes", "made", "making",
		"start", "starts", "started", "starting",
		"exfiltrate", "exfiltrates", "exfiltrated",
		"save", "saves", "saved", "saving",
		"store", "stores", "stored", "storing",
		"load", "loads", "loading",
		"request", "requests", "requested",
		"visit", "visits", "visited",
		"click", "clicks", "clicked",
		"inject", "injects", "injected",
		"communicate", "communicates", "communicated",
		"resolve", "resolves", "resolved",
		"wrote", "place", "places", "placed",
		"crack", "cracks", "cracked", "cracking",
		"dump", "dumps", "dumped",
		"collect", "collects", "collecting",
		"seek", "seeks", "sought",
		"convince", "convinces", "convinced",
		"evade", "evades", "evaded",
		"attack", "attacked", "scrape", "scrapes", "scraped", "scraping")
	addWords(TagNoun,
		"attacker", "attackers", "file", "files", "process", "processes",
		"information", "data", "credential", "credentials", "host",
		"hosts", "server", "servers", "system", "systems", "malware",
		"tool", "tools", "utility", "image", "images", "metadata",
		"address", "addresses", "connection", "connections", "stage",
		"stages", "step", "steps", "behavior", "behaviors", "victim",
		"victims", "password", "passwords", "cracker", "text", "user",
		"users", "vulnerability", "vulnerabilities", "payload",
		"payloads", "script", "scripts", "backdoor", "attachment",
		"email", "emails", "browser", "extension", "repository", "asset",
		"assets", "activity", "activities", "details", "reconnaissance",
		"penetration", "movement", "exfiltration", "shell", "command",
		"commands", "control", "service", "services", "cloud", "device",
		"devices", "network", "kernel", "log", "logs", "account",
		"accounts", "machine", "link", "macro", "document", "documents",
		"memory", "registry", "entry", "entries", "folder", "directory",
		"website", "page", "compression",
		"gathering", "leakage", "scanning", "collection", "shadow",
		"part", "way", "time", "practice", "detection", "blacklisting",
		"ip", "url", "domain", "hash", "port", "protocol",
		// Indefinite pronouns act as NP heads; crucially, "something" is
		// the IOC-protection dummy word and must parse as a nominal.
		"something", "anything", "everything", "nothing", "someone")
	addWords(TagNum,
		"one", "two", "three", "four", "five", "six", "seven", "eight",
		"nine", "ten", "zero")
}

// looksLikeIOC reports whether a raw token resembles an indicator string
// (path, IP, URL, hash); these are tagged PROPN so the parser treats them
// as noun-phrase heads.
func looksLikeIOC(w string) bool {
	if strings.ContainsAny(w, "/\\") {
		return true
	}
	if strings.Count(w, ".") >= 2 {
		return true
	}
	digits := 0
	for _, r := range w {
		if unicode.IsDigit(r) {
			digits++
		}
	}
	return len(w) >= 8 && digits > len(w)/2
}

// TagTokens assigns POS tags in place: lexicon lookup, then suffix
// heuristics, then contextual repair.
func (p *Pipeline) TagTokens(toks []Token) {
	for i := range toks {
		toks[i].POS = initialTag(toks[i].Text, i == 0)
	}
	repairTags(toks)
}

func initialTag(w string, sentenceInitial bool) Tag {
	if w == "" {
		return TagX
	}
	if len(w) == 1 && !unicode.IsLetter(rune(w[0])) && !unicode.IsDigit(rune(w[0])) {
		return TagPunct
	}
	lw := lower(w)
	if tag, ok := lexicon[lw]; ok {
		return tag
	}
	if looksLikeIOC(w) {
		return TagPropn
	}
	if isNumeric(w) {
		return TagNum
	}
	if unicode.IsUpper(rune(w[0])) && !sentenceInitial {
		return TagPropn
	}
	// Suffix heuristics.
	switch {
	case strings.HasSuffix(lw, "ly"):
		return TagAdv
	case strings.HasSuffix(lw, "ing"), strings.HasSuffix(lw, "ed"):
		return TagVerb
	case strings.HasSuffix(lw, "tion"), strings.HasSuffix(lw, "sion"),
		strings.HasSuffix(lw, "ment"), strings.HasSuffix(lw, "ness"),
		strings.HasSuffix(lw, "ity"), strings.HasSuffix(lw, "ware"),
		strings.HasSuffix(lw, "er"), strings.HasSuffix(lw, "ers"),
		strings.HasSuffix(lw, "or"), strings.HasSuffix(lw, "ors"):
		return TagNoun
	case strings.HasSuffix(lw, "ous"), strings.HasSuffix(lw, "ful"),
		strings.HasSuffix(lw, "ive"), strings.HasSuffix(lw, "able"):
		return TagAdj
	}
	return TagNoun
}

func isNumeric(w string) bool {
	hasDigit := false
	for _, r := range w {
		if unicode.IsDigit(r) {
			hasDigit = true
		} else if r != '.' && r != ',' && r != '-' && r != ':' && r != '/' {
			return false
		}
	}
	return hasDigit
}

// repairTags applies contextual rules over the initial tags.
func repairTags(toks []Token) {
	for i := range toks {
		lw := lower(toks[i].Text)
		switch {
		case lw == "to":
			// Particle before a verb ("to read"), preposition otherwise.
			if i+1 < len(toks) && wouldBeVerb(toks[i+1].Text) {
				toks[i].POS = TagPart
			} else {
				toks[i].POS = TagAdp
			}
		case toks[i].POS == TagVerb && i > 0:
			prev := toks[i-1].POS
			// "This corresponds ...": a demonstrative standing alone
			// before a verb is a pronoun subject, not a determiner.
			if prev == TagDet && isDemonstrative(toks[i-1].Text) {
				toks[i-1].POS = TagPron
				continue
			}
			// "the read", "a write": nominal use of a verb form — unless
			// the form is a participle modifying a following noun ("the
			// launched process"), which acts adjectivally.
			if prev == TagDet || prev == TagAdj || prev == TagAdp {
				if strings.HasSuffix(lw, "ing") && prev == TagAdp {
					break // keep VERB after "by"/"of"+gerund ("by using")
				}
				if strings.HasSuffix(lw, "ed") && i+1 < len(toks) && toks[i+1].POS.IsNounLike() {
					toks[i].POS = TagAdj
				} else {
					toks[i].POS = TagNoun
				}
			}
		case toks[i].POS == TagSconj:
			// "after the penetration" → preposition-like; "after it
			// connected" → subordinator. Treat as ADP before a noun phrase.
			if i+1 < len(toks) {
				next := toks[i+1].POS
				if next == TagDet || next == TagNoun || next == TagPropn {
					toks[i].POS = TagAdp
				}
			}
		}
	}
	// Gerund as noun: "the copying and compressing of ..." handled above;
	// participles before nouns act as adjectives: "the launched process".
	for i := 0; i+1 < len(toks); i++ {
		if toks[i].POS == TagVerb && strings.HasSuffix(lower(toks[i].Text), "ed") &&
			(toks[i+1].POS.IsNounLike()) && i > 0 &&
			(toks[i-1].POS == TagDet || toks[i-1].POS == TagAdj) {
			toks[i].POS = TagAdj
		}
	}
}

func isDemonstrative(w string) bool {
	switch lower(w) {
	case "this", "that", "these", "those":
		return true
	}
	return false
}

func wouldBeVerb(w string) bool {
	if tag, ok := lexicon[lower(w)]; ok {
		return tag == TagVerb || tag == TagAux
	}
	return false
}
