package nlp

import (
	"reflect"
	"testing"
	"testing/quick"
)

func texts(toks []Token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

func TestTokenizeBasic(t *testing.T) {
	toks := Tokenize("The attacker used something to read credentials.")
	want := []string{"The", "attacker", "used", "something", "to", "read", "credentials", "."}
	if !reflect.DeepEqual(texts(toks), want) {
		t.Fatalf("got %v", texts(toks))
	}
}

func TestTokenizeOffsets(t *testing.T) {
	text := "He ran /bin/tar."
	toks := Tokenize(text)
	for _, tok := range toks {
		if text[tok.Start:tok.End] != tok.Text {
			t.Errorf("offset mismatch: %q vs %q", text[tok.Start:tok.End], tok.Text)
		}
	}
}

func TestTokenizeKeepsPathsAndIPs(t *testing.T) {
	toks := Tokenize("Run /usr/bin/gpg against 192.168.29.128 now.")
	got := texts(toks)
	want := []string{"Run", "/usr/bin/gpg", "against", "192.168.29.128", "now", "."}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestTokenizeSplitsTrailingPeriod(t *testing.T) {
	toks := Tokenize("see /tmp/upload.tar.")
	got := texts(toks)
	want := []string{"see", "/tmp/upload.tar", "."}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestTokenizePunctuationRuns(t *testing.T) {
	toks := Tokenize("files, processes, and connections")
	got := texts(toks)
	want := []string{"files", ",", "processes", ",", "and", "connections"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestSplitSentences(t *testing.T) {
	p := NewPipeline()
	text := "The attacker used something. It wrote data to something. Then it stopped."
	sents := p.SplitSentences(text)
	if len(sents) != 3 {
		t.Fatalf("sentences = %d, want 3: %+v", len(sents), sents)
	}
	if texts(sents[0].Tokens)[0] != "The" || texts(sents[2].Tokens)[0] != "Then" {
		t.Fatalf("wrong boundaries: %v", sents)
	}
}

func TestSplitSentencesIOCSubject(t *testing.T) {
	p := NewPipeline()
	// A sentence starting with an IOC (lowercase '/') must still be split.
	text := "He compressed the file. /bin/bzip2 read from the archive."
	sents := p.SplitSentences(text)
	if len(sents) != 2 {
		t.Fatalf("sentences = %d, want 2", len(sents))
	}
}

func TestSplitSentencesNoFalseSplitOnDecimal(t *testing.T) {
	p := NewPipeline()
	text := "Version 2.5 of the malware connected to the server."
	sents := p.SplitSentences(text)
	if len(sents) != 1 {
		t.Fatalf("sentences = %d, want 1 (no split inside 2.5)", len(sents))
	}
}

// Property: token offsets are strictly increasing, within bounds, and
// round-trip to the token text.
func TestTokenizeOffsetsProperty(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		prev := -1
		for _, tok := range toks {
			if tok.Start < 0 || tok.End > len(s) || tok.Start >= tok.End {
				return false
			}
			if tok.Start < prev {
				return false
			}
			prev = tok.End
			if s[tok.Start:tok.End] != tok.Text {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLemma(t *testing.T) {
	cases := []struct {
		word string
		pos  Tag
		want string
	}{
		{"wrote", TagVerb, "write"},
		{"reads", TagVerb, "read"},
		{"used", TagVerb, "use"},
		{"copied", TagVerb, "copy"},
		{"dropped", TagVerb, "drop"},
		{"transferred", TagVerb, "transfer"},
		{"connecting", TagVerb, "connect"},
		{"using", TagVerb, "use"},
		{"downloads", TagVerb, "download"},
		{"accesses", TagVerb, "access"},
		{"ran", TagVerb, "run"},
		{"sent", TagVerb, "send"},
		{"stole", TagVerb, "steal"},
		{"leaked", TagVerb, "leak"},
		{"installed", TagVerb, "install"},
		{"executes", TagVerb, "execute"},
		{"launched", TagVerb, "launch"},
		{"activities", TagNoun, "activity"},
		{"files", TagNoun, "file"},
		{"processes", TagNoun, "process"},
		{"credentials", TagNoun, "credential"},
		{"/bin/tar", TagPropn, "/bin/tar"}, // IOCs keep their exact form
	}
	for _, c := range cases {
		if got := Lemma(c.word, c.pos); got != c.want {
			t.Errorf("Lemma(%q, %s) = %q, want %q", c.word, c.pos, got, c.want)
		}
	}
}

func TestVectors(t *testing.T) {
	v := NewVectors(64)
	if s := v.Similarity("upload.tar", "upload.tar"); s < 0.999 {
		t.Errorf("self-similarity = %v", s)
	}
	same := v.Similarity("/tmp/upload.tar", "/tmp/upload.tar.bz2")
	diff := v.Similarity("/tmp/upload.tar", "/etc/passwd")
	if same <= diff {
		t.Errorf("related strings must be closer: same=%v diff=%v", same, diff)
	}
	morph := v.Similarity("download", "downloads")
	unrel := v.Similarity("download", "passwd")
	if morph <= unrel {
		t.Errorf("morphological variants must be closer: %v vs %v", morph, unrel)
	}
}

func TestVectorsDeterministic(t *testing.T) {
	a := NewVectors(64).Vector("hello")
	b := NewVectors(64).Vector("hello")
	if !reflect.DeepEqual(a, b) {
		t.Fatal("vectors must be deterministic across instances")
	}
}
