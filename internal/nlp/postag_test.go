package nlp

import "testing"

// tagOf runs the tagger on a sentence and returns the tag of one word.
func tagOf(t *testing.T, sentence, word string) Tag {
	t.Helper()
	p := NewPipeline()
	toks := Tokenize(sentence)
	p.TagTokens(toks)
	for _, tok := range toks {
		if tok.Text == word {
			return tok.POS
		}
	}
	t.Fatalf("word %q not found in %q", word, sentence)
	return TagX
}

func TestTaggerContextRules(t *testing.T) {
	cases := []struct {
		sentence, word string
		want           Tag
	}{
		// "to" particle vs preposition.
		{"He wants to read the file.", "to", TagPart},
		{"He went to the server.", "to", TagAdp},
		// Nominal use of verb forms after determiners.
		{"The write failed.", "write", TagNoun},
		{"They write data.", "write", TagVerb},
		// Gerund after preposition stays verbal.
		{"He did it by using the tool.", "using", TagVerb},
		// Demonstrative pronoun before a verb.
		{"This corresponds to the process.", "This", TagPron},
		{"This file is malicious.", "This", TagDet},
		// Participle before a noun acts adjectivally.
		{"The launched process connected out.", "launched", TagAdj},
		// Subordinator vs preposition-like "after".
		{"After the penetration, he left.", "After", TagAdp},
		// Sentence-initial capitalized common word is not a proper noun.
		{"Attacker used the tool.", "Attacker", TagNoun},
	}
	for _, c := range cases {
		if got := tagOf(t, c.sentence, c.word); got != c.want {
			t.Errorf("%q in %q = %s, want %s", c.word, c.sentence, got, c.want)
		}
	}
}

func TestTaggerSuffixHeuristics(t *testing.T) {
	cases := []struct {
		word string
		want Tag
	}{
		{"quickly", TagAdv},
		{"obfuscation", TagNoun},
		{"dangerous", TagAdj},
		{"beaconing", TagVerb},
		{"implanted", TagVerb},
		{"12345", TagNum},
		{"three", TagNum},
	}
	for _, c := range cases {
		if got := initialTag(c.word, false); got != c.want {
			t.Errorf("initialTag(%q) = %s, want %s", c.word, got, c.want)
		}
	}
}

func TestLooksLikeIOC(t *testing.T) {
	yes := []string{"/etc/passwd", `C:\x\y.exe`, "192.168.1.1", "com.android.email", "d41d8cd98f00b204"}
	no := []string{"attacker", "read", "e-mail", "3.5"}
	for _, w := range yes {
		if !looksLikeIOC(w) {
			t.Errorf("looksLikeIOC(%q) = false", w)
		}
	}
	for _, w := range no {
		if looksLikeIOC(w) {
			t.Errorf("looksLikeIOC(%q) = true", w)
		}
	}
}

func TestLemmaIrregulars(t *testing.T) {
	cases := map[string]string{
		"wrote": "write", "written": "write", "sent": "send",
		"stole": "steal", "ran": "run", "got": "get", "made": "make",
		"was": "be", "did": "do", "found": "find", "gave": "give",
	}
	for form, want := range cases {
		if got := Lemma(form, TagVerb); got != want {
			t.Errorf("Lemma(%q) = %q, want %q", form, got, want)
		}
	}
}

func TestLemmaSuffixRules(t *testing.T) {
	cases := map[string]string{
		"scans": "scan", "scanned": "scan", "scanning": "scan",
		"copies": "copy", "copied": "copy",
		"accesses": "access", "launches": "launch",
		"exfiltrated": "exfiltrate", "communicates": "communicate",
		"dropping": "drop", "transferred": "transfer",
	}
	for form, want := range cases {
		if got := Lemma(form, TagVerb); got != want {
			t.Errorf("Lemma(%q) = %q, want %q", form, got, want)
		}
	}
	nouns := map[string]string{
		"entries": "entry", "processes": "process", "viruses": "viruse",
		"files": "file", "status": "status",
	}
	for form, want := range nouns {
		if got := Lemma(form, TagNoun); got != want {
			t.Errorf("noun Lemma(%q) = %q, want %q", form, got, want)
		}
	}
}

func TestSentenceSplitAfterDummy(t *testing.T) {
	// Protected text: a placeholder can begin a sentence.
	p := NewPipeline()
	sents := p.SplitSentences("He ran the tool. something read the file.")
	if len(sents) != 2 {
		t.Fatalf("sentences = %d, want 2", len(sents))
	}
}

func TestTokenizeGeneralShattersPaths(t *testing.T) {
	toks := TokenizeGeneral("read /etc/passwd and 192.168.1.1 from upload.tar")
	var texts []string
	for _, tok := range toks {
		texts = append(texts, tok.Text)
	}
	// Paths shatter; IPs and dotted filenames survive.
	joined := ""
	for _, s := range texts {
		joined += s + "|"
	}
	for _, want := range []string{"etc|", "passwd|", "192.168.1.1|", "upload.tar|"} {
		found := false
		for _, s := range texts {
			if s+"|" == want {
				found = true
			}
		}
		if !found {
			t.Errorf("missing token %q in %v", want, texts)
		}
	}
	for _, s := range texts {
		if s == "/etc/passwd" {
			t.Error("general tokenizer must shatter absolute paths")
		}
	}
}
