// Package nlp is a from-scratch natural-language processing substrate: a
// tokenizer, sentence segmenter, part-of-speech tagger, lemmatizer,
// deterministic rule-based dependency parser, and hashed character-n-gram
// word vectors.
//
// It is the spaCy stand-in for ThreatRaptor's threat behavior extraction
// pipeline (Section III-C). The extraction pipeline consumes exactly six
// capabilities — token boundaries, sentence boundaries, POS tags,
// dependency trees, lemmas, and vector similarity — and this package
// provides all six without external models. The tagger is lexicon- and
// suffix-based with contextual repair rules; the parser is a shallow
// clause parser producing subject/verb/object/preposition attachments,
// which is the tree structure the IOC relation extraction algorithm
// inspects (root→LCA and LCA→node dependency paths).
package nlp

// Tag is a universal part-of-speech tag.
type Tag string

// The tag inventory (a subset of Universal POS tags).
const (
	TagNoun  Tag = "NOUN"
	TagPropn Tag = "PROPN"
	TagVerb  Tag = "VERB"
	TagAux   Tag = "AUX"
	TagPron  Tag = "PRON"
	TagDet   Tag = "DET"
	TagAdp   Tag = "ADP" // prepositions
	TagAdj   Tag = "ADJ"
	TagAdv   Tag = "ADV"
	TagCconj Tag = "CCONJ"
	TagSconj Tag = "SCONJ"
	TagNum   Tag = "NUM"
	TagPart  Tag = "PART" // "to", "not"
	TagPunct Tag = "PUNCT"
	TagX     Tag = "X"
)

// IsNounLike reports whether the tag can head a noun phrase.
func (t Tag) IsNounLike() bool { return t == TagNoun || t == TagPropn || t == TagNum }

// Token is one token with its offsets into the original text.
type Token struct {
	Text  string
	Lemma string
	POS   Tag
	Start int // byte offset of the first byte
	End   int // byte offset one past the last byte
}

// Sentence is a contiguous token span.
type Sentence struct {
	Tokens []Token
	Start  int
	End    int
}

// Text reconstructs an approximation of the sentence text.
func (s *Sentence) Text(original string) string {
	if s.Start < 0 || s.End > len(original) || s.Start >= s.End {
		return ""
	}
	return original[s.Start:s.End]
}

// Dependency relation labels produced by the parser.
const (
	RelRoot     = "root"
	RelNsubj    = "nsubj"
	RelDobj     = "dobj"
	RelPobj     = "pobj"
	RelPrep     = "prep"
	RelXcomp    = "xcomp"
	RelConj     = "conj"
	RelCC       = "cc"
	RelDet      = "det"
	RelAmod     = "amod"
	RelAdvmod   = "advmod"
	RelAux      = "aux"
	RelMark     = "mark"
	RelCompound = "compound"
	RelPoss     = "poss"
	RelPunct    = "punct"
	RelDep      = "dep"
)

// DepTree is the dependency parse of one sentence. Head[i] is the token
// index of token i's head, or -1 for the root; Rel[i] labels the edge from
// Head[i] to i.
type DepTree struct {
	Tokens []Token
	Head   []int
	Rel    []string
	Root   int
}

// Children returns the indexes of i's direct dependents, in order.
func (d *DepTree) Children(i int) []int {
	var out []int
	for j, h := range d.Head {
		if h == i {
			out = append(out, j)
		}
	}
	return out
}

// PathToRoot returns the token indexes from i up to (and including) the
// root.
func (d *DepTree) PathToRoot(i int) []int {
	var out []int
	for i >= 0 {
		out = append(out, i)
		if len(out) > len(d.Tokens) { // defensive: corrupt tree
			break
		}
		i = d.Head[i]
	}
	return out
}

// LCA returns the lowest common ancestor of tokens a and b, or -1.
func (d *DepTree) LCA(a, b int) int {
	onPath := make(map[int]bool)
	for _, i := range d.PathToRoot(a) {
		onPath[i] = true
	}
	for _, i := range d.PathToRoot(b) {
		if onPath[i] {
			return i
		}
	}
	return -1
}

// Pipeline bundles the NLP components with their shared lexicons.
type Pipeline struct {
	vec *Vectors
}

// NewPipeline returns a ready-to-use pipeline.
func NewPipeline() *Pipeline {
	return &Pipeline{vec: NewVectors(64)}
}

// Process tokenizes, tags, lemmatizes, and parses text, returning one
// dependency tree per sentence.
func (p *Pipeline) Process(text string) []*DepTree {
	return p.ProcessTokens(Tokenize(text))
}

// Similarity returns the cosine similarity of the two words' vectors,
// in [-1, 1].
func (p *Pipeline) Similarity(a, b string) float64 { return p.vec.Similarity(a, b) }

// Vector returns the embedding of w.
func (p *Pipeline) Vector(w string) []float32 { return p.vec.Vector(w) }
