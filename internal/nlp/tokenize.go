package nlp

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Tokenize splits text into tokens with byte offsets. Words are runs of
// letters, digits, and intra-word connectors (apostrophes, hyphens,
// underscores, dots and slashes inside path-like runs); punctuation marks
// are single-character tokens. A trailing sentence period is split off a
// word, but an internal dot (e.g. in a protected placeholder or a version
// number) is kept.
//
// Note: the extraction pipeline replaces IOCs with a plain dummy word
// before tokenization (IOC protection), so in practice the tokenizer sees
// ordinary English; the path-run handling is a safety net for unprotected
// text and for the open-IE baselines that run without protection.
func Tokenize(text string) []Token {
	var toks []Token
	i := 0
	n := len(text)
	for i < n {
		r, size := utf8.DecodeRuneInString(text[i:])
		switch {
		case unicode.IsSpace(r):
			i += size
		case isWordRune(r):
			start := i
			for i < n {
				rr, sz := utf8.DecodeRuneInString(text[i:])
				if isWordRune(rr) || isConnector(text, i, sz) {
					i += sz
					continue
				}
				break
			}
			// Split trailing dots/commas off (sentence period glued to a
			// word).
			end := i
			for end > start+1 && (text[end-1] == '.' || text[end-1] == ',') {
				end--
			}
			toks = append(toks, Token{Text: text[start:end], Start: start, End: end})
			for p := end; p < i; p++ {
				toks = append(toks, Token{Text: string(text[p]), Start: p, End: p + 1})
			}
		default:
			toks = append(toks, Token{Text: text[i : i+size], Start: i, End: i + size})
			i += size
		}
	}
	return toks
}

func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '/' || r == '$' || r == '\\'
}

// isConnector reports whether the rune at byte position i continues a
// word: apostrophes and hyphens between letters, and dots/colons/at-signs
// between word runes (file extensions, IPs, versions, emails).
func isConnector(text string, i, size int) bool {
	if size != 1 {
		return false
	}
	b := text[i]
	if b != '\'' && b != '-' && b != '.' && b != ':' && b != '@' {
		return false
	}
	if i == 0 || i+1 >= len(text) {
		return false
	}
	prev, _ := utf8.DecodeLastRuneInString(text[:i])
	next, _ := utf8.DecodeRuneInString(text[i+1:])
	return isWordRune(prev) && isWordRune(next)
}

// SplitSentences segments text into sentences and tokenizes each. A
// sentence ends at '.', '!', '?' or ';', provided the period is not part
// of a word (abbreviations and IOCs keep their dots during tokenization)
// and the next token starts a new clause.
func (p *Pipeline) SplitSentences(text string) []Sentence {
	return p.SplitSentencesTokens(Tokenize(text))
}

func startsClause(next string) bool {
	if next == "" {
		return false
	}
	// The IOC-protection dummy word can legitimately start a sentence
	// (protected text replaces sentence-initial indicators with it).
	if next == "something" {
		return true
	}
	r := rune(next[0])
	return unicode.IsUpper(r) || next[0] == '/' || unicode.IsDigit(r) || next[0] == '"'
}

func textEnd(toks []Token) int {
	if len(toks) == 0 {
		return 0
	}
	return toks[len(toks)-1].End
}

// words lowercases w for lexicon lookups.
func lower(w string) string { return strings.ToLower(w) }

// TokenizeGeneral splits text the way a general-English tokenizer (e.g.
// spaCy's) does: slashes, backslashes, and most punctuation are separators;
// only apostrophes, hyphens, and dots/colons between alphanumerics stay
// inside words. Under this mode an IP or a bare filename survives as one
// token, but a file path like /etc/passwd shatters into pieces — the
// behaviour that motivates IOC protection (Table V of the paper).
func TokenizeGeneral(text string) []Token {
	var toks []Token
	i := 0
	n := len(text)
	for i < n {
		r, size := utf8.DecodeRuneInString(text[i:])
		switch {
		case unicode.IsSpace(r):
			i += size
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			start := i
			for i < n {
				rr, sz := utf8.DecodeRuneInString(text[i:])
				if unicode.IsLetter(rr) || unicode.IsDigit(rr) || generalConnector(text, i, sz) {
					i += sz
					continue
				}
				break
			}
			end := i
			for end > start+1 && (text[end-1] == '.' || text[end-1] == ',') {
				end--
			}
			toks = append(toks, Token{Text: text[start:end], Start: start, End: end})
			for p := end; p < i; p++ {
				toks = append(toks, Token{Text: string(text[p]), Start: p, End: p + 1})
			}
		default:
			toks = append(toks, Token{Text: text[i : i+size], Start: i, End: i + size})
			i += size
		}
	}
	return toks
}

func generalConnector(text string, i, size int) bool {
	if size != 1 {
		return false
	}
	b := text[i]
	if b != '\'' && b != '-' && b != '.' && b != ':' {
		return false
	}
	if i == 0 || i+1 >= len(text) {
		return false
	}
	prev, _ := utf8.DecodeLastRuneInString(text[:i])
	next, _ := utf8.DecodeRuneInString(text[i+1:])
	return (unicode.IsLetter(prev) || unicode.IsDigit(prev)) &&
		(unicode.IsLetter(next) || unicode.IsDigit(next))
}

// SplitSentencesTokens segments a pre-tokenized stream into sentences,
// using the same boundary rules as SplitSentences.
func (p *Pipeline) SplitSentencesTokens(toks []Token) []Sentence {
	var sents []Sentence
	begin := 0
	flush := func(endTok int, endOff int) {
		if endTok > begin {
			span := toks[begin:endTok]
			sents = append(sents, Sentence{
				Tokens: append([]Token(nil), span...),
				Start:  span[0].Start,
				End:    endOff,
			})
		}
		begin = endTok
	}
	for i, t := range toks {
		if t.Text == "." || t.Text == "!" || t.Text == "?" || t.Text == ";" {
			if i+1 >= len(toks) || startsClause(toks[i+1].Text) {
				flush(i+1, t.End)
			}
		}
	}
	flush(len(toks), textEnd(toks))
	return sents
}

// ProcessTokens tags, lemmatizes, and parses a pre-tokenized text.
func (p *Pipeline) ProcessTokens(toks []Token) []*DepTree {
	sents := p.SplitSentencesTokens(toks)
	trees := make([]*DepTree, 0, len(sents))
	for _, s := range sents {
		p.TagTokens(s.Tokens)
		for i := range s.Tokens {
			s.Tokens[i].Lemma = Lemma(s.Tokens[i].Text, s.Tokens[i].POS)
		}
		trees = append(trees, ParseDependencies(s.Tokens))
	}
	return trees
}
