package nlp

import (
	"testing"
)

// parse runs the full pipeline on one sentence and returns its tree.
func parse(t *testing.T, text string) *DepTree {
	t.Helper()
	p := NewPipeline()
	trees := p.Process(text)
	if len(trees) != 1 {
		t.Fatalf("expected 1 sentence, got %d for %q", len(trees), text)
	}
	return trees[0]
}

// find returns the index of the first token with the given text.
func find(t *testing.T, d *DepTree, text string) int {
	t.Helper()
	for i, tok := range d.Tokens {
		if tok.Text == text {
			return i
		}
	}
	t.Fatalf("token %q not found in %v", text, d.Tokens)
	return -1
}

// hasArc asserts head(dep) == head with the given relation.
func hasArc(t *testing.T, d *DepTree, depText, headText, rel string) {
	t.Helper()
	dep := find(t, d, depText)
	head := find(t, d, headText)
	if d.Head[dep] != head || d.Rel[dep] != rel {
		t.Errorf("want %s -%s-> %s; got head=%v rel=%q",
			headText, rel, depText, tokText(d, d.Head[dep]), d.Rel[dep])
	}
}

func tokText(d *DepTree, i int) string {
	if i < 0 {
		return "ROOT"
	}
	return d.Tokens[i].Text
}

func TestParseSVO(t *testing.T) {
	d := parse(t, "The attacker used something.")
	hasArc(t, d, "attacker", "used", RelNsubj)
	hasArc(t, d, "something", "used", RelDobj)
	hasArc(t, d, "The", "attacker", RelDet)
	if d.Root != find(t, d, "used") {
		t.Errorf("root = %v", tokText(d, d.Root))
	}
}

func TestParseInfinitivePurpose(t *testing.T) {
	// The paper's running example, after IOC protection.
	d := parse(t, "The attacker used something to read user credentials from something.")
	used := find(t, d, "used")
	read := find(t, d, "read")
	if d.Head[read] != used || d.Rel[read] != RelXcomp {
		t.Errorf("read should be xcomp of used; head=%v rel=%q", tokText(d, d.Head[read]), d.Rel[read])
	}
	hasArc(t, d, "attacker", "used", RelNsubj)
	// First "something" is dobj of used; second is pobj of "from".
	first := find(t, d, "something")
	if d.Head[first] != used || d.Rel[first] != RelDobj {
		t.Errorf("first something: head=%v rel=%q", tokText(d, d.Head[first]), d.Rel[first])
	}
	from := find(t, d, "from")
	if d.Head[from] != read || d.Rel[from] != RelPrep {
		t.Errorf("from: head=%v rel=%q", tokText(d, d.Head[from]), d.Rel[from])
	}
	var second = -1
	for i, tok := range d.Tokens {
		if tok.Text == "something" && i != first {
			second = i
		}
	}
	if second < 0 || d.Head[second] != from || d.Rel[second] != RelPobj {
		t.Errorf("second something should be pobj of from")
	}
	// LCA of the two IOC placeholders is "used"; the verb nearest the
	// object is "read" — exactly what relation extraction needs.
	if lca := d.LCA(first, second); lca != used {
		t.Errorf("LCA = %v, want used", tokText(d, lca))
	}
}

func TestParseIOCSubject(t *testing.T) {
	d := parse(t, "something read from something and wrote to something.")
	read := find(t, d, "read")
	wrote := find(t, d, "wrote")
	if d.Root != read {
		t.Errorf("root = %v", tokText(d, d.Root))
	}
	first := 0 // first "something" token is the subject
	if d.Head[first] != read || d.Rel[first] != RelNsubj {
		t.Errorf("subject: head=%v rel=%q", tokText(d, d.Head[first]), d.Rel[first])
	}
	if d.Head[wrote] != read || d.Rel[wrote] != RelConj {
		t.Errorf("wrote should be conj of read; head=%v rel=%q", tokText(d, d.Head[wrote]), d.Rel[wrote])
	}
}

func TestParsePrepositionalChain(t *testing.T) {
	d := parse(t, "It wrote the gathered information to a file something.")
	hasArc(t, d, "It", "wrote", RelNsubj)
	hasArc(t, d, "information", "wrote", RelDobj)
	to := find(t, d, "to")
	if d.Rel[to] != RelPrep {
		t.Errorf("to should be prep, got %q", d.Rel[to])
	}
	// "a file something" is one NP headed by the placeholder.
	hasArc(t, d, "something", "to", RelPobj)
	hasArc(t, d, "file", "something", RelCompound)
}

func TestParseRelativeClause(t *testing.T) {
	d := parse(t, "The attacker encrypted the zipped file, which corresponds to the launched process something reading from something.")
	corresponds := find(t, d, "corresponds")
	file := find(t, d, "file")
	if d.Head[corresponds] != file || d.Rel[corresponds] != RelAcl {
		t.Errorf("relative clause: head=%v rel=%q", tokText(d, d.Head[corresponds]), d.Rel[corresponds])
	}
	hasArc(t, d, "which", "corresponds", RelNsubj)
	// "something reading from something": gerund clause on the first
	// placeholder.
	reading := find(t, d, "reading")
	first := find(t, d, "something")
	if d.Head[reading] != first || d.Rel[reading] != RelAcl {
		t.Errorf("gerund clause: head=%v rel=%q", tokText(d, d.Head[reading]), d.Rel[reading])
	}
}

func TestParseByUsingGerund(t *testing.T) {
	d := parse(t, "He leaked the information back to the host by using something to connect to something.")
	leaked := find(t, d, "leaked")
	using := find(t, d, "using")
	connect := find(t, d, "connect")
	if d.Head[using] != leaked || d.Rel[using] != RelAdvcl {
		t.Errorf("using: head=%v rel=%q", tokText(d, d.Head[using]), d.Rel[using])
	}
	if d.Head[connect] != using || d.Rel[connect] != RelXcomp {
		t.Errorf("connect: head=%v rel=%q", tokText(d, d.Head[connect]), d.Rel[connect])
	}
	// First placeholder is dobj of using; second is pobj under connect.
	first := find(t, d, "something")
	if d.Head[first] != using || d.Rel[first] != RelDobj {
		t.Errorf("first something: head=%v rel=%q", tokText(d, d.Head[first]), d.Rel[first])
	}
}

func TestParseCoordinatedObjects(t *testing.T) {
	d := parse(t, "The malware scanned files and directories.")
	hasArc(t, d, "files", "scanned", RelDobj)
	hasArc(t, d, "directories", "files", RelConj)
}

func TestParseCopular(t *testing.T) {
	d := parse(t, "The file is malicious.")
	if d.Root < 0 {
		t.Fatal("no root")
	}
	// Every token must be attached.
	for i := range d.Tokens {
		if d.Head[i] == unattached {
			t.Errorf("token %q unattached", d.Tokens[i].Text)
		}
	}
}

func TestParseTreeWellFormed(t *testing.T) {
	texts := []string{
		"The attacker used something to read user credentials from something.",
		"After compression, the attacker used the tool to encrypt the zipped file.",
		"something read from something and wrote to something.",
		"Finally, the attacker leveraged the utility to read the data from something.",
		"It downloads an image where the address is encoded in the metadata.",
		"Weird , , punctuation ... everywhere !!",
		"",
		"one",
	}
	p := NewPipeline()
	for _, text := range texts {
		for _, d := range p.Process(text) {
			n := len(d.Tokens)
			if n == 0 {
				continue
			}
			roots := 0
			for i := range d.Tokens {
				switch {
				case d.Head[i] == -1:
					roots++
				case d.Head[i] == unattached:
					t.Errorf("%q: token %q unattached", text, d.Tokens[i].Text)
				case d.Head[i] < -2 || d.Head[i] >= n:
					t.Errorf("%q: token %q head out of range: %d", text, d.Tokens[i].Text, d.Head[i])
				case d.Head[i] == i:
					t.Errorf("%q: token %q is its own head", text, d.Tokens[i].Text)
				}
			}
			if roots != 1 {
				t.Errorf("%q: roots = %d, want 1", text, roots)
			}
			// No cycles: every PathToRoot terminates.
			for i := range d.Tokens {
				path := d.PathToRoot(i)
				if len(path) > n {
					t.Errorf("%q: cycle through token %q", text, d.Tokens[i].Text)
				}
			}
		}
	}
}

func TestPOSTagging(t *testing.T) {
	p := NewPipeline()
	toks := Tokenize("The attacker downloads a password cracker from the server.")
	p.TagTokens(toks)
	wantTags := map[string]Tag{
		"The":       TagDet,
		"attacker":  TagNoun,
		"downloads": TagVerb,
		"a":         TagDet,
		"password":  TagNoun,
		"cracker":   TagNoun,
		"from":      TagAdp,
		"server":    TagNoun,
	}
	for _, tok := range toks {
		if want, ok := wantTags[tok.Text]; ok && tok.POS != want {
			t.Errorf("POS(%q) = %s, want %s", tok.Text, tok.POS, want)
		}
	}
}

func TestPOSNominalVerb(t *testing.T) {
	p := NewPipeline()
	toks := Tokenize("The read happened after the write.")
	p.TagTokens(toks)
	if toks[1].POS != TagNoun {
		t.Errorf("'the read' should tag read as NOUN, got %s", toks[1].POS)
	}
}

func TestPOSIOCs(t *testing.T) {
	p := NewPipeline()
	toks := Tokenize("/bin/tar read 192.168.29.128 data")
	p.TagTokens(toks)
	if toks[0].POS != TagPropn {
		t.Errorf("path should be PROPN, got %s", toks[0].POS)
	}
	if toks[2].POS != TagPropn && toks[2].POS != TagNum {
		t.Errorf("IP should be PROPN/NUM, got %s", toks[2].POS)
	}
}

func TestLCA(t *testing.T) {
	d := parse(t, "The attacker used something to read user credentials from something.")
	used := find(t, d, "used")
	attacker := find(t, d, "attacker")
	if got := d.LCA(attacker, attacker); got != attacker {
		t.Errorf("LCA(x,x) = %v", tokText(d, got))
	}
	read := find(t, d, "read")
	if got := d.LCA(read, attacker); got != used {
		t.Errorf("LCA(read, attacker) = %v, want used", tokText(d, got))
	}
}

func TestChildren(t *testing.T) {
	d := parse(t, "The attacker used something.")
	used := find(t, d, "used")
	kids := d.Children(used)
	if len(kids) < 2 {
		t.Fatalf("used should have nsubj and dobj children: %v", kids)
	}
}
