package extract

import (
	"fmt"
	"strings"
	"testing"
)

// dataLeakReport is the OSCTI text of the paper's Figure 2 (case ra_2).
const dataLeakReport = `As a first step, the attacker used /bin/tar to read user credentials from /etc/passwd. It wrote the gathered information to a file /tmp/upload.tar. Then, the attacker leveraged /bin/bzip2 utility to compress the tar file. /bin/bzip2 read from /tmp/upload.tar and wrote to /tmp/upload.tar.bz2. After compression, the attacker used Gnu Privacy Guard (GnuPG) tool to encrypt the zipped file, which corresponds to the launched process /usr/bin/gpg reading from /tmp/upload.tar.bz2. /usr/bin/gpg then wrote the sensitive information to /tmp/upload. Finally, the attacker leveraged the curl utility (/usr/bin/curl) to read the data from /tmp/upload. He leaked the gathered sensitive information back to the attacker C2 host by using /usr/bin/curl to connect to 192.168.29.128.`

// edgeSet turns a graph into "subj verb obj" strings for comparison.
func edgeSet(g *Graph) map[string]int {
	out := make(map[string]int)
	for _, e := range g.Edges {
		key := fmt.Sprintf("%s %s %s", g.Node(e.From).Text, e.Verb, g.Node(e.To).Text)
		out[key] = e.Seq
	}
	return out
}

func TestExtractDataLeakGraph(t *testing.T) {
	ex := New(DefaultOptions())
	res := ex.Extract(dataLeakReport)

	wantEdges := []string{
		"/bin/tar read /etc/passwd",
		"/bin/tar write /tmp/upload.tar",
		"/bin/bzip2 read /tmp/upload.tar",
		"/bin/bzip2 write /tmp/upload.tar.bz2",
		"/usr/bin/gpg read /tmp/upload.tar.bz2",
		"/usr/bin/gpg write /tmp/upload",
		"/usr/bin/curl read /tmp/upload",
		"/usr/bin/curl connect 192.168.29.128",
	}
	got := edgeSet(res.Graph)
	for _, w := range wantEdges {
		if _, ok := got[w]; !ok {
			t.Errorf("missing edge %q\ngraph:\n%s", w, res.Graph)
		}
	}
	if len(res.Graph.Edges) != len(wantEdges) {
		t.Errorf("edges = %d, want %d\n%s", len(res.Graph.Edges), len(wantEdges), res.Graph)
	}
	// Sequence numbers must follow the narrative order.
	for i := 0; i+1 < len(wantEdges); i++ {
		if got[wantEdges[i]] >= got[wantEdges[i+1]] {
			t.Errorf("edge %q (seq %d) should precede %q (seq %d)",
				wantEdges[i], got[wantEdges[i]], wantEdges[i+1], got[wantEdges[i+1]])
		}
	}
	// All nine IOCs of Figure 2 must be nodes.
	if len(res.Graph.Nodes) != 9 {
		var names []string
		for _, n := range res.Graph.Nodes {
			names = append(names, n.Text)
		}
		t.Errorf("nodes = %d (%v), want 9", len(res.Graph.Nodes), names)
	}
}

func TestExtractEntities(t *testing.T) {
	ex := New(DefaultOptions())
	res := ex.Extract(dataLeakReport)
	want := map[string]bool{
		"/bin/tar": true, "/etc/passwd": true, "/tmp/upload.tar": true,
		"/bin/bzip2": true, "/tmp/upload.tar.bz2": true,
		"/usr/bin/gpg": true, "/tmp/upload": true, "/usr/bin/curl": true,
		"192.168.29.128": true,
	}
	got := map[string]bool{}
	for _, ic := range res.IOCs {
		got[ic.Text] = true
	}
	for w := range want {
		if !got[w] {
			t.Errorf("missing entity %q", w)
		}
	}
	for g := range got {
		if !want[g] {
			t.Errorf("unexpected entity %q", g)
		}
	}
}

func TestExtractWithoutProtectionDegrades(t *testing.T) {
	full := New(DefaultOptions()).Extract(dataLeakReport)
	abl := New(Options{IOCProtection: false}).Extract(dataLeakReport)
	if len(abl.Triplets) >= len(full.Triplets) {
		t.Errorf("removing IOC protection must hurt relation recall: %d vs %d",
			len(abl.Triplets), len(full.Triplets))
	}
	uniq := func(res *Result) int {
		set := map[string]bool{}
		for _, ic := range res.IOCs {
			set[ic.Text] = true
		}
		return len(set)
	}
	if uniq(abl) >= uniq(full) {
		t.Errorf("removing IOC protection must hurt entity recall: %d vs %d",
			uniq(abl), uniq(full))
	}
}

func TestExtractSimpleSVO(t *testing.T) {
	ex := New(DefaultOptions())
	res := ex.Extract("/bin/malware.sh wrote data to /tmp/stash.")
	if len(res.Triplets) != 1 {
		t.Fatalf("triplets = %d: %+v", len(res.Triplets), res.Triplets)
	}
	tr := res.Triplets[0]
	if tr.Subj.Text != "/bin/malware.sh" || tr.Verb != "write" || tr.Obj.Text != "/tmp/stash" {
		t.Fatalf("got (%s, %s, %s)", tr.Subj.Text, tr.Verb, tr.Obj.Text)
	}
}

func TestExtractInstrumental(t *testing.T) {
	ex := New(DefaultOptions())
	res := ex.Extract("The attacker used /usr/bin/wget to download the payload from 10.9.8.7.")
	if len(res.Triplets) != 1 {
		t.Fatalf("triplets = %+v", res.Triplets)
	}
	tr := res.Triplets[0]
	if tr.Subj.Text != "/usr/bin/wget" || tr.Verb != "download" || tr.Obj.Text != "10.9.8.7" {
		t.Fatalf("got (%s, %s, %s)", tr.Subj.Text, tr.Verb, tr.Obj.Text)
	}
}

func TestExtractCoordinatedClauses(t *testing.T) {
	ex := New(DefaultOptions())
	res := ex.Extract("/bin/a read from /etc/x and wrote to /tmp/y.")
	got := map[string]bool{}
	for _, tr := range res.Triplets {
		got[fmt.Sprintf("%s %s %s", tr.Subj.Text, tr.Verb, tr.Obj.Text)] = true
	}
	if !got["/bin/a read /etc/x"] || !got["/bin/a write /tmp/y"] {
		t.Fatalf("got %v", got)
	}
	if got["/etc/x write /tmp/y"] || got["/etc/x read /tmp/y"] {
		t.Fatalf("spurious object-object relation: %v", got)
	}
}

func TestExtractNoCrossClauseSubjects(t *testing.T) {
	ex := New(DefaultOptions())
	res := ex.Extract("/bin/a read /etc/x and /bin/b wrote /tmp/y.")
	for _, tr := range res.Triplets {
		key := fmt.Sprintf("%s %s %s", tr.Subj.Text, tr.Verb, tr.Obj.Text)
		switch key {
		case "/bin/a read /etc/x", "/bin/b write /tmp/y":
		default:
			t.Errorf("spurious triplet %q", key)
		}
	}
}

func TestExtractCoref(t *testing.T) {
	ex := New(DefaultOptions())
	res := ex.Extract("The attacker used /bin/nc to read /etc/shadow. It wrote the stolen data to /tmp/loot.bin.")
	got := map[string]bool{}
	for _, tr := range res.Triplets {
		got[fmt.Sprintf("%s %s %s", tr.Subj.Text, tr.Verb, tr.Obj.Text)] = true
	}
	if !got["/bin/nc write /tmp/loot.bin"] {
		t.Fatalf("pronoun subject should resolve to /bin/nc: %v", got)
	}
}

func TestExtractGerundClause(t *testing.T) {
	ex := New(DefaultOptions())
	res := ex.Extract("This corresponds to the process /usr/bin/ssh reading from /home/admin/.ssh/id_rsa.")
	got := map[string]bool{}
	for _, tr := range res.Triplets {
		got[fmt.Sprintf("%s %s %s", tr.Subj.Text, tr.Verb, tr.Obj.Text)] = true
	}
	if !got["/usr/bin/ssh read /home/admin/.ssh/id_rsa"] {
		t.Fatalf("gerund clause extraction failed: %v", got)
	}
}

func TestExtractEmptyAndIrrelevantText(t *testing.T) {
	ex := New(DefaultOptions())
	if res := ex.Extract(""); len(res.Triplets) != 0 || len(res.Graph.Nodes) != 0 {
		t.Error("empty doc must produce an empty result")
	}
	res := ex.Extract("The weather is nice today. Nothing else happened.")
	if len(res.Triplets) != 0 {
		t.Errorf("no-IOC text must produce no triplets: %+v", res.Triplets)
	}
}

func TestExtractMergesAcrossBlocks(t *testing.T) {
	doc := "The malware wrote its loot to /tmp/loot.dat in the first stage.\n\nLater, /bin/scp read loot.dat and sent it to 10.1.2.3."
	ex := New(DefaultOptions())
	res := ex.Extract(doc)
	// "loot.dat" and "/tmp/loot.dat" must merge to one node.
	count := 0
	for _, n := range res.Graph.Nodes {
		if strings.Contains(n.Text, "loot.dat") {
			count++
			if n.Text != "/tmp/loot.dat" {
				t.Errorf("canonical form should be the full path, got %q", n.Text)
			}
		}
	}
	if count != 1 {
		t.Errorf("loot.dat mentions should merge into 1 node, got %d\n%s", count, res.Graph)
	}
}

func TestExtractDoesNotMergeDistinctFiles(t *testing.T) {
	ex := New(DefaultOptions())
	res := ex.Extract("/bin/bzip2 read from /tmp/upload.tar and wrote to /tmp/upload.tar.bz2.")
	names := map[string]bool{}
	for _, n := range res.Graph.Nodes {
		names[n.Text] = true
	}
	if !names["/tmp/upload.tar"] || !names["/tmp/upload.tar.bz2"] {
		t.Fatalf("distinct files must stay distinct nodes: %v", names)
	}
}

func TestSegmentBlocks(t *testing.T) {
	doc := "first block line one\nline two\n\nsecond block\n\n\nthird block"
	blocks := segmentBlocks(doc)
	if len(blocks) != 3 {
		t.Fatalf("blocks = %d, want 3: %+v", len(blocks), blocks)
	}
	for _, b := range blocks {
		if doc[b.offset:b.offset+len(b.text)] != b.text {
			t.Errorf("block offset mismatch: %+v", b)
		}
	}
}

func TestExtractDeterministic(t *testing.T) {
	run := func() string {
		return New(DefaultOptions()).Extract(dataLeakReport).Graph.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("extraction must be deterministic:\n%s\nvs\n%s", a, b)
	}
}
