package extract

// relationVerbs is the curated list of candidate IOC relation verbs
// (Step 5 of Algorithm 1), keyed by lemma. A token can only become the
// final relation verb if its lemma is in this list and it forms the
// correct grammatical relation with the IOC pair.
var relationVerbs = map[string]bool{
	"read": true, "write": true, "open": true, "download": true,
	"upload": true, "execute": true, "run": true, "launch": true,
	"start": true, "connect": true, "send": true, "receive": true,
	"transfer": true, "leak": true, "steal": true, "copy": true,
	"compress": true, "encrypt": true, "decrypt": true, "scan": true,
	"install": true, "create": true, "modify": true, "delete": true,
	"drop": true, "fetch": true, "extract": true, "access": true,
	"exfiltrate": true, "gather": true, "crack": true, "dump": true,
	"inject": true, "communicate": true, "save": true, "store": true,
	"load": true, "request": true, "visit": true, "spawn": true,
	"scrape": true, "resolve": true, "get": true,
}

// instrumentalVerbs introduce a tool as their direct object ("the attacker
// USED /bin/tar to read ..."): the tool IOC is the behavioral subject of
// the downstream relation verb, not its object.
var instrumentalVerbs = map[string]bool{
	"use": true, "leverage": true, "utilize": true, "employ": true,
}

// IsRelationVerb reports whether the lemma is a candidate relation verb.
func IsRelationVerb(lemma string) bool { return relationVerbs[lemma] }

// IsInstrumentalVerb reports whether the lemma introduces a tool object.
func IsInstrumentalVerb(lemma string) bool { return instrumentalVerbs[lemma] }
