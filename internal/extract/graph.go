// Package extract implements ThreatRaptor's unsupervised threat behavior
// extraction pipeline (Algorithm 1 and Section III-C): OSCTI report
// parsing, IOC entity extraction, IOC relation extraction, and threat
// behavior graph construction.
package extract

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"threatraptor/internal/ioc"
)

// Node is one IOC entity in the threat behavior graph. Mentions of the
// same indicator across blocks are merged into a single node (Step 8 of
// Algorithm 1); Aliases keeps the distinct surface forms.
type Node struct {
	ID      int
	Text    string // canonical (longest) surface form
	Type    ioc.Type
	Aliases []string
}

// Edge is one IOC relation: a directed step from a subject IOC to an
// object IOC with a lemmatized relation verb. Seq is the step order
// (1-based), assigned by the occurrence offset of the relation verb in the
// OSCTI text — the sequential information Figure 2 highlights.
type Edge struct {
	From, To int // node IDs
	Verb     string
	Seq      int
	Offset   int // byte offset of the verb in the document
}

// Graph is the threat behavior graph: nodes are IOCs, edges are IOC
// relations ordered by sequence number.
type Graph struct {
	Nodes []*Node
	Edges []*Edge
}

// Node returns the node with the given ID, or nil.
func (g *Graph) Node(id int) *Node {
	for _, n := range g.Nodes {
		if n.ID == id {
			return n
		}
	}
	return nil
}

// String renders the graph as one "subj -verb(seq)-> obj" line per edge.
func (g *Graph) String() string {
	var b strings.Builder
	for _, e := range g.Edges {
		from, to := g.Node(e.From), g.Node(e.To)
		fmt.Fprintf(&b, "%s -%s(%d)-> %s\n", from.Text, e.Verb, e.Seq, to.Text)
	}
	return b.String()
}

// Triplet is one extracted ⟨subject IOC, relation verb, object IOC⟩, the
// unit scored in the paper's RQ1 relation evaluation.
type Triplet struct {
	Subj       ioc.IOC
	Verb       string // lemmatized
	Obj        ioc.IOC
	VerbOffset int // byte offset of the verb in the document
}

// Result bundles everything the pipeline produces for one document.
type Result struct {
	// IOCs are the recognized IOC entity mentions that survived alignment
	// with the dependency trees (used for entity P/R/F1).
	IOCs []ioc.IOC
	// Triplets are the extracted IOC relations (used for relation P/R/F1).
	Triplets []Triplet
	// Graph is the constructed threat behavior graph.
	Graph *Graph
	// ExtractTime and GraphTime split the pipeline's wall time between
	// text→entities&relations and graph construction (paper Table VII).
	ExtractTime time.Duration
	GraphTime   time.Duration
}

// buildGraph constructs the threat behavior graph from merged IOC nodes
// and extracted triplets (Step 10 of Algorithm 1).
func buildGraph(merged *mergeTable, triplets []Triplet) *Graph {
	g := &Graph{}
	byCanon := make(map[int]*Node)
	nodeFor := func(mention ioc.IOC) *Node {
		ci := merged.canonical(mention.Text)
		if n, ok := byCanon[ci]; ok {
			return n
		}
		group := merged.groups[ci]
		n := &Node{
			ID:      len(g.Nodes) + 1,
			Text:    group.canonText,
			Type:    group.typ,
			Aliases: group.aliases(),
		}
		byCanon[ci] = n
		g.Nodes = append(g.Nodes, n)
		return n
	}

	sorted := append([]Triplet(nil), triplets...)
	sort.SliceStable(sorted, func(a, b int) bool {
		return sorted[a].VerbOffset < sorted[b].VerbOffset
	})
	seen := make(map[string]bool)
	for _, t := range sorted {
		from := nodeFor(t.Subj)
		to := nodeFor(t.Obj)
		key := fmt.Sprintf("%d|%s|%d", from.ID, t.Verb, to.ID)
		if seen[key] {
			continue
		}
		seen[key] = true
		g.Edges = append(g.Edges, &Edge{
			From:   from.ID,
			To:     to.ID,
			Verb:   t.Verb,
			Seq:    len(g.Edges) + 1,
			Offset: t.VerbOffset,
		})
	}
	return g
}
