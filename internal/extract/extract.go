package extract

import (
	"strings"
	"time"

	"threatraptor/internal/ioc"
	"threatraptor/internal/nlp"
)

// Options controls the extraction pipeline.
type Options struct {
	// IOCProtection toggles Step 2 of Algorithm 1. Disabling it reproduces
	// the paper's "ThreatRaptor − IOC Protection" ablation: the text is
	// processed by a general tokenizer that shatters most indicators.
	IOCProtection bool
	// MergeThreshold is the word-vector similarity gate for IOC merging
	// (Step 8). Zero selects the default of 0.8.
	MergeThreshold float64
}

// DefaultOptions returns the configuration used in the paper's main
// results.
func DefaultOptions() Options {
	return Options{IOCProtection: true, MergeThreshold: 0.8}
}

// Extractor runs the threat behavior extraction pipeline.
type Extractor struct {
	pipe *nlp.Pipeline
	opts Options
}

// New returns an extractor with the given options.
func New(opts Options) *Extractor {
	return &Extractor{pipe: nlp.NewPipeline(), opts: opts}
}

// annTree is a dependency tree annotated for extraction (Step 5): which
// tokens are IOCs, which are candidate relation verbs, and which are
// instrumental verbs.
type annTree struct {
	tree    *nlp.DepTree
	iocAt   map[int]ioc.IOC // token index -> restored indicator
	corefAt map[int]bool    // IOC introduced by coreference (not a mention)
	verbAt  map[int]string  // token index -> relation verb lemma
	instrAt map[int]string  // token index -> instrumental verb lemma
	block   int             // block index, for cross-block ordering
	skip    bool            // Step 6: no candidate verbs => skip
}

// globalOffset orders token positions across blocks. Block texts are
// shorter than 1<<20 bytes in practice; the composite key preserves the
// (block, offset) lexicographic order.
func (a *annTree) globalOffset(tokenStart int) int {
	return a.block<<20 | tokenStart
}

// block is one OSCTI text block with its byte offset in the document.
type textBlock struct {
	text   string
	offset int
}

// segmentBlocks splits a document on blank lines (Step 1 of Algorithm 1).
func segmentBlocks(doc string) []textBlock {
	var blocks []textBlock
	start := 0
	i := 0
	flush := func(end int) {
		if chunk := doc[start:end]; strings.TrimSpace(chunk) != "" {
			blocks = append(blocks, textBlock{text: chunk, offset: start})
		}
	}
	for i < len(doc) {
		if doc[i] == '\n' {
			j := i + 1
			for j < len(doc) && (doc[j] == ' ' || doc[j] == '\t' || doc[j] == '\r') {
				j++
			}
			if j < len(doc) && doc[j] == '\n' {
				flush(i)
				start = j + 1
				i = j + 1
				continue
			}
		}
		i++
	}
	flush(len(doc))
	return blocks
}

// Extract runs the full pipeline (Algorithm 1) over an OSCTI document and
// returns the recognized IOC mentions, the extracted relation triplets,
// and the constructed threat behavior graph.
func (e *Extractor) Extract(doc string) *Result {
	start := time.Now()
	blocks := segmentBlocks(doc)
	var trees []*annTree
	for bi, blk := range blocks {
		trees = append(trees, e.processBlock(bi, blk)...)
	}

	// Step 7: coreference resolution. A pronominal subject refers to the
	// most recent acting IOC (the subject of the last triplet or the tool
	// of the last instrumental verb).
	resolveCoref(trees)

	// Step 8: scan and merge IOCs across blocks.
	merged := newMergeTable(e.pipe, e.opts.MergeThreshold)
	var mentions []ioc.IOC
	for _, at := range trees {
		for idx, ic := range at.iocAt {
			if at.corefAt[idx] {
				continue
			}
			merged.add(ic)
			mentions = append(mentions, ic)
		}
	}

	// Step 9: IOC relation extraction per tree.
	var triplets []Triplet
	for _, at := range trees {
		if at.skip {
			continue
		}
		for _, ic := range at.iocAt { // coref mentions join merge table too
			merged.add(ic)
		}
		triplets = append(triplets, extractRelations(at)...)
	}

	// Step 10: threat behavior graph construction.
	extractTime := time.Since(start)
	graphStart := time.Now()
	graph := buildGraph(merged, triplets)
	return &Result{
		IOCs:        mentions,
		Triplets:    triplets,
		Graph:       graph,
		ExtractTime: extractTime,
		GraphTime:   time.Since(graphStart),
	}
}

// processBlock applies Steps 2–6 to one block.
func (e *Extractor) processBlock(blockIdx int, blk textBlock) []*annTree {
	var deps []*nlp.DepTree
	iocBySpan := make(map[int]ioc.IOC) // token start offset -> IOC

	if e.opts.IOCProtection {
		prot, recs := ioc.Protect(blk.text)
		deps = e.pipe.ProcessTokens(nlp.Tokenize(prot))
		for _, rec := range recs {
			ic := rec.IOC
			ic.Start += blk.offset
			ic.End += blk.offset
			iocBySpan[rec.Offset] = ic
		}
		// Restore the protected indicators inside the trees (Step 4 tail).
		for _, d := range deps {
			for i := range d.Tokens {
				tok := &d.Tokens[i]
				if tok.Text != ioc.DummyWord {
					continue
				}
				if ic, ok := iocBySpan[tok.Start]; ok {
					tok.Text = ic.Text
					tok.Lemma = ic.Text
					tok.POS = nlp.TagPropn
				}
			}
		}
	} else {
		// Ablation: general tokenization; only indicators that happen to
		// align with a single token survive.
		deps = e.pipe.ProcessTokens(nlp.TokenizeGeneral(blk.text))
		for _, ic := range ioc.Extract(blk.text) {
			g := ic
			g.Start += blk.offset
			g.End += blk.offset
			iocBySpan[ic.Start] = g
		}
	}

	var out []*annTree
	for _, d := range deps {
		at := &annTree{
			tree:    d,
			iocAt:   make(map[int]ioc.IOC),
			corefAt: make(map[int]bool),
			verbAt:  make(map[int]string),
			instrAt: make(map[int]string),
			block:   blockIdx,
		}
		for i := range d.Tokens {
			tok := &d.Tokens[i]
			if e.opts.IOCProtection {
				if ic, ok := iocBySpan[tok.Start]; ok && tok.Text == ic.Text {
					at.iocAt[i] = ic
				}
			} else if ic, ok := iocBySpan[tok.Start]; ok &&
				tok.End-tok.Start == ic.End-ic.Start && tok.Text == ic.Text {
				at.iocAt[i] = ic
			}
			if tok.POS == nlp.TagVerb {
				switch {
				case IsRelationVerb(tok.Lemma):
					at.verbAt[i] = tok.Lemma
				case IsInstrumentalVerb(tok.Lemma):
					at.instrAt[i] = tok.Lemma
				}
			}
		}
		// Step 6 (tree simplification): trees with no candidate relation
		// verbs cannot yield relations; skipping them only speeds up
		// extraction.
		if len(at.verbAt) == 0 {
			at.skip = true
		}
		out = append(out, at)
	}
	return out
}

// resolveCoref links pronominal subjects to the most recent acting IOC
// across the trees of the document (Step 7 operates within a block; actors
// rarely change across block boundaries mid-narrative, and the paper's
// block linking happens at graph construction anyway).
func resolveCoref(trees []*annTree) {
	var lastActor *ioc.IOC
	for _, at := range trees {
		d := at.tree
		// Resolve pronoun subjects in this tree against the current actor.
		for i := range d.Tokens {
			tok := &d.Tokens[i]
			if tok.POS != nlp.TagPron || d.Rel[i] != nlp.RelNsubj {
				continue
			}
			lw := strings.ToLower(tok.Text)
			if lw != "it" && lw != "he" && lw != "she" && lw != "they" && lw != "this" {
				continue
			}
			if lastActor != nil {
				at.iocAt[i] = *lastActor
				at.corefAt[i] = true
			}
		}
		// Update the actor: prefer the subject IOC of this tree, then the
		// direct object of an instrumental verb (the tool being used).
		for i := range d.Tokens {
			ic, isIOC := at.iocAt[i]
			if !isIOC || at.corefAt[i] {
				continue
			}
			switch {
			case d.Rel[i] == nlp.RelNsubj:
				c := ic
				lastActor = &c
			case (d.Rel[i] == nlp.RelDobj || d.Rel[i] == nlp.RelDep) &&
				d.Head[i] >= 0 && at.instrAt[d.Head[i]] != "":
				c := ic
				lastActor = &c
			}
		}
	}
}
