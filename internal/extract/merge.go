package extract

import (
	"sort"
	"strings"

	"threatraptor/internal/ioc"
	"threatraptor/internal/nlp"
)

// mergeTable implements Step 8 of Algorithm 1 (IOC scan and merge): the
// same indicator can appear across blocks in different surface forms
// (e.g. the bare file name "upload.tar" and the full path
// "/tmp/upload.tar"); such mentions are merged into one group using
// character-level overlap (path-boundary suffix matching) gated by word-
// vector similarity. The rules are deliberately conservative: two paths
// that merely share a prefix ("/tmp/upload.tar" vs "/tmp/upload.tar.bz2")
// are different files and must never merge.
type mergeTable struct {
	groups    []*mergeGroup
	byText    map[string]int // surface form -> group index
	pipe      *nlp.Pipeline
	threshold float64
}

type mergeGroup struct {
	canonText string
	typ       ioc.Type
	forms     map[string]bool
}

func (g *mergeGroup) aliases() []string {
	out := make([]string, 0, len(g.forms))
	for f := range g.forms {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

func newMergeTable(pipe *nlp.Pipeline, threshold float64) *mergeTable {
	if threshold <= 0 {
		threshold = 0.8
	}
	return &mergeTable{byText: make(map[string]int), pipe: pipe, threshold: threshold}
}

// add registers a mention, merging it into an existing group when the
// merge criteria hold.
func (m *mergeTable) add(ic ioc.IOC) {
	if _, ok := m.byText[ic.Text]; ok {
		return
	}
	for gi, g := range m.groups {
		if m.mergeable(g, ic) {
			g.forms[ic.Text] = true
			m.byText[ic.Text] = gi
			// Prefer the most specific (longest) form as canonical.
			if len(ic.Text) > len(g.canonText) {
				g.canonText = ic.Text
			}
			return
		}
	}
	g := &mergeGroup{canonText: ic.Text, typ: ic.Type, forms: map[string]bool{ic.Text: true}}
	m.groups = append(m.groups, g)
	m.byText[ic.Text] = len(m.groups) - 1
}

func (m *mergeTable) mergeable(g *mergeGroup, ic ioc.IOC) bool {
	for form := range g.forms {
		if strings.EqualFold(form, ic.Text) {
			return true
		}
		if pathSuffixMatch(form, ic.Text) || pathSuffixMatch(ic.Text, form) {
			// Semantic gate: the shared basename must dominate the vector.
			if m.pipe.Similarity(base(form), base(ic.Text)) >= m.threshold {
				return true
			}
		}
	}
	return false
}

// pathSuffixMatch reports whether short is the basename (or a /-aligned
// suffix) of full.
func pathSuffixMatch(full, short string) bool {
	if len(short) >= len(full) {
		return false
	}
	return strings.HasSuffix(full, "/"+short) || strings.HasSuffix(full, "\\"+short)
}

func base(p string) string {
	if i := strings.LastIndexAny(p, "/\\"); i >= 0 {
		return p[i+1:]
	}
	return p
}

// canonical returns the group index for a known surface form (-1 when the
// form was never added).
func (m *mergeTable) canonical(text string) int {
	if gi, ok := m.byText[text]; ok {
		return gi
	}
	return -1
}
