package extract

import (
	"sort"

	"threatraptor/internal/nlp"
)

// extractRelations implements Step 9 of Algorithm 1: for every pair of IOC
// nodes in a dependency tree, check whether their dependency paths satisfy
// a subject-object relation (three path parts: root→LCA, LCA→each node),
// then pick the annotated candidate verb closest to the object node as the
// relation verb.
func extractRelations(at *annTree) []Triplet {
	idxs := make([]int, 0, len(at.iocAt))
	for i := range at.iocAt {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)

	var out []Triplet
	for i := 0; i < len(idxs); i++ {
		for j := i + 1; j < len(idxs); j++ {
			if t, ok := relate(at, idxs[i], idxs[j]); ok {
				out = append(out, t)
			}
		}
	}
	return out
}

// chain walks from x up to (excluding) stop, returning the node indexes in
// bottom-up order. The relation label of node chain[k] is d.Rel[chain[k]].
func chain(d *nlp.DepTree, x, stop int) []int {
	var nodes []int
	for x != stop && x >= 0 && len(nodes) <= len(d.Tokens) {
		nodes = append(nodes, x)
		x = d.Head[x]
	}
	return nodes
}

func hasRel(d *nlp.DepTree, nodes []int, rels ...string) bool {
	for _, n := range nodes {
		for _, r := range rels {
			if d.Rel[n] == r {
				return true
			}
		}
	}
	return false
}

// topRel returns the relation of the chain's topmost node (the arc into
// the LCA).
func topRel(d *nlp.DepTree, nodes []int) string {
	if len(nodes) == 0 {
		return ""
	}
	return d.Rel[nodes[len(nodes)-1]]
}

// relate decides whether IOC tokens a < b form a relation and with which
// direction and verb.
func relate(at *annTree, a, b int) (Triplet, bool) {
	d := at.tree
	lca := d.LCA(a, b)
	if lca < 0 {
		return Triplet{}, false
	}

	// Ancestor cases: the nominal that dominates the clause is the
	// behavioral subject ("the process /usr/bin/gpg reading from X").
	if lca == a {
		return ancestorRelate(at, a, b)
	}
	if lca == b {
		return ancestorRelate(at, b, a)
	}

	chA := chain(d, a, lca)
	chB := chain(d, b, lca)

	subjA := isSubjectChain(at, lca, chA)
	subjB := isSubjectChain(at, lca, chB)
	objA := hasRel(d, chA, nlp.RelDobj, nlp.RelPobj)
	objB := hasRel(d, chB, nlp.RelDobj, nlp.RelPobj)

	switch {
	case subjA && subjB:
		return Triplet{}, false // two clause subjects: no relation
	case subjA && objB:
		if !subjectAttachmentOK(d, lca, chA, chB) {
			return Triplet{}, false
		}
		return buildTriplet(at, a, b, lca, chB)
	case subjB && objA:
		if !subjectAttachmentOK(d, lca, chB, chA) {
			return Triplet{}, false
		}
		return buildTriplet(at, b, a, lca, chA)
	case objA && objB:
		// "downloaded /tmp/x from 1.2.3.4": when both IOCs hang off the
		// same verb, the direct object is the flow subject and the
		// preposition object the flow object — the construction behind the
		// paper's Filepath→IP "download" edges. The prep must attach
		// directly to the LCA verb, and the clause must not already have
		// an explicit IOC actor (which the subject-pair rules cover).
		if hasIOCActor(at, lca) {
			return Triplet{}, false
		}
		if topRel(d, chA) == nlp.RelDobj && directPrepObject(d, chB, lca) {
			return buildTriplet(at, a, b, lca, chB)
		}
		if topRel(d, chB) == nlp.RelDobj && directPrepObject(d, chA, lca) {
			return buildTriplet(at, b, a, lca, chA)
		}
		return Triplet{}, false
	default:
		return Triplet{}, false
	}
}

// directPrepObject reports whether the chain is exactly [pobj, prep] with
// the preposition attached to the LCA.
func directPrepObject(d *nlp.DepTree, ch []int, lca int) bool {
	return len(ch) == 2 &&
		d.Rel[ch[0]] == nlp.RelPobj &&
		d.Rel[ch[1]] == nlp.RelPrep &&
		d.Head[ch[1]] == lca
}

// hasIOCActor reports whether the clause of verb v already names an IOC
// actor: an IOC nominal subject of v, or an IOC tool object of an
// instrumental verb governing v.
func hasIOCActor(at *annTree, v int) bool {
	d := at.tree
	for _, c := range d.Children(v) {
		if d.Rel[c] == nlp.RelNsubj {
			if _, ok := at.iocAt[c]; ok {
				return true
			}
		}
	}
	h := d.Head[v]
	if h >= 0 && at.instrAt[h] != "" {
		for _, c := range d.Children(h) {
			if d.Rel[c] == nlp.RelDobj || d.Rel[c] == nlp.RelDep {
				if _, ok := at.iocAt[c]; ok {
					return true
				}
			}
		}
	}
	return false
}

// subjectAttachmentOK verifies that the subject's governing verb is the
// LCA itself or lies on the object's chain. Otherwise the subject belongs
// to a sibling clause ("A read X and B wrote Y": B is the subject of
// "wrote" only, so pairing B with X must fail).
func subjectAttachmentOK(d *nlp.DepTree, lca int, subjChain, objChain []int) bool {
	for _, n := range subjChain {
		if d.Rel[n] != nlp.RelNsubj {
			continue
		}
		h := d.Head[n]
		if h == lca {
			return true
		}
		for _, m := range objChain {
			if m == h {
				return true
			}
		}
		return false
	}
	return true // instrumental subject: the tool arc attaches at the LCA
}

// isSubjectChain reports whether the chain marks its IOC as the behavioral
// subject: a nominal subject arc anywhere on the chain, or the direct
// object of an instrumental verb ("used /bin/tar to ..." — the tool acts).
func isSubjectChain(at *annTree, lca int, ch []int) bool {
	d := at.tree
	if hasRel(d, ch, nlp.RelNsubj) {
		return true
	}
	top := topRel(d, ch)
	if (top == nlp.RelDobj || top == nlp.RelDep) && at.instrAt[lca] != "" {
		return true
	}
	// Tool object of an instrumental verb below the LCA:
	// "... by using /usr/bin/curl to connect ...".
	for k, n := range ch {
		if k == len(ch)-1 {
			break
		}
		if (d.Rel[n] == nlp.RelDobj || d.Rel[n] == nlp.RelDep) &&
			at.instrAt[d.Head[n]] != "" {
			return true
		}
	}
	return false
}

// ancestorRelate handles the case where subj dominates obj in the tree.
// The connecting chain must pass through a candidate relation verb and an
// object-like arc.
func ancestorRelate(at *annTree, subj, obj int) (Triplet, bool) {
	d := at.tree
	ch := chain(d, obj, subj)
	if !hasRel(d, ch, nlp.RelDobj, nlp.RelPobj) {
		return Triplet{}, false
	}
	hasVerb := false
	for _, n := range ch {
		if at.verbAt[n] != "" {
			hasVerb = true
			break
		}
	}
	if !hasVerb {
		return Triplet{}, false
	}
	return buildTriplet(at, subj, obj, subj, ch)
}

// buildTriplet selects the relation verb and assembles the triplet.
// objChain is the object-side chain (bottom-up). The verb is the candidate
// closest to the object: the deepest verb on the object chain, then the
// LCA itself, then any verb above the LCA on the path to the root.
func buildTriplet(at *annTree, subj, obj, lca int, objChain []int) (Triplet, bool) {
	d := at.tree

	// Reject if a verb on the object chain has its own explicit nominal
	// subject different from subj: that verb's clause belongs to another
	// actor ("A read X and B wrote Y" must not yield (A, write, Y)).
	for _, n := range objChain {
		if at.verbAt[n] == "" && at.instrAt[n] == "" {
			continue
		}
		for _, c := range d.Children(n) {
			if d.Rel[c] == nlp.RelNsubj && c != subj {
				if _, isIOC := at.iocAt[c]; isIOC || d.Tokens[c].POS.IsNounLike() {
					return Triplet{}, false
				}
			}
		}
	}

	verbIdx := -1
	for _, n := range objChain { // bottom-up: first hit is closest to obj
		if at.verbAt[n] != "" {
			verbIdx = n
			break
		}
	}
	if verbIdx < 0 && at.verbAt[lca] != "" {
		verbIdx = lca
	}
	if verbIdx < 0 {
		// Root→LCA part: scan upward from the LCA.
		for _, n := range d.PathToRoot(lca) {
			if at.verbAt[n] != "" {
				verbIdx = n
				break
			}
		}
	}
	if verbIdx < 0 {
		return Triplet{}, false
	}

	subjIOC := at.iocAt[subj]
	objIOC := at.iocAt[obj]
	return Triplet{
		Subj:       subjIOC,
		Verb:       at.verbAt[verbIdx],
		Obj:        objIOC,
		VerbOffset: at.globalOffset(d.Tokens[verbIdx].Start),
	}, true
}
