package extract

import (
	"encoding/json"
	"testing"
)

func TestGraphJSONRoundTrip(t *testing.T) {
	res := New(DefaultOptions()).Extract(dataLeakReport)
	data, err := json.Marshal(res.Graph)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Nodes) != len(res.Graph.Nodes) || len(back.Edges) != len(res.Graph.Edges) {
		t.Fatalf("round trip lost structure: %dx%d vs %dx%d",
			len(back.Nodes), len(back.Edges), len(res.Graph.Nodes), len(res.Graph.Edges))
	}
	if back.String() != res.Graph.String() {
		t.Fatalf("graphs differ:\n%s\nvs\n%s", back.String(), res.Graph.String())
	}
}

func TestGraphJSONValidation(t *testing.T) {
	bad := []string{
		`{"nodes":[{"id":1,"text":"/x","type":"FilepathLinux"}],"edges":[{"from":1,"to":2,"verb":"read","seq":1}]}`,                 // unknown node
		`{"nodes":[{"id":1,"text":"","type":"FilepathLinux"}],"edges":[]}`,                                                          // empty text
		`{"nodes":[{"id":1,"text":"/x","type":"F"},{"id":1,"text":"/y","type":"F"}],"edges":[]}`,                                    // dup id
		`{"nodes":[{"id":1,"text":"/x","type":"F"},{"id":2,"text":"/y","type":"F"}],"edges":[{"from":1,"to":2,"verb":"","seq":1}]}`, // empty verb
		`{not json`,
	}
	for _, src := range bad {
		var g Graph
		if err := json.Unmarshal([]byte(src), &g); err == nil {
			t.Errorf("Unmarshal(%q) should fail", src)
		}
	}
}

func TestGraphJSONEmpty(t *testing.T) {
	var g Graph
	data, err := json.Marshal(&g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Nodes) != 0 || len(back.Edges) != 0 {
		t.Fatal("empty graph round trip")
	}
}
