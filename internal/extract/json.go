package extract

import (
	"encoding/json"
	"fmt"

	"threatraptor/internal/ioc"
)

// graphJSON is the stable wire form of a threat behavior graph, suitable
// for exchange with other CTI tooling (nodes are IOCs, edges carry the
// lemmatized relation verb and the step sequence number).
type graphJSON struct {
	Nodes []nodeJSON `json:"nodes"`
	Edges []edgeJSON `json:"edges"`
}

type nodeJSON struct {
	ID      int      `json:"id"`
	Text    string   `json:"text"`
	Type    string   `json:"type"`
	Aliases []string `json:"aliases,omitempty"`
}

type edgeJSON struct {
	From int    `json:"from"`
	To   int    `json:"to"`
	Verb string `json:"verb"`
	Seq  int    `json:"seq"`
}

// MarshalJSON encodes the graph in the stable wire form.
func (g *Graph) MarshalJSON() ([]byte, error) {
	out := graphJSON{Nodes: []nodeJSON{}, Edges: []edgeJSON{}}
	for _, n := range g.Nodes {
		out.Nodes = append(out.Nodes, nodeJSON{
			ID: n.ID, Text: n.Text, Type: string(n.Type), Aliases: n.Aliases,
		})
	}
	for _, e := range g.Edges {
		out.Edges = append(out.Edges, edgeJSON{From: e.From, To: e.To, Verb: e.Verb, Seq: e.Seq})
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes the wire form, validating node references.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var in graphJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	ids := make(map[int]bool, len(in.Nodes))
	g.Nodes = nil
	g.Edges = nil
	for _, n := range in.Nodes {
		if n.Text == "" {
			return fmt.Errorf("extract: node %d has no text", n.ID)
		}
		if ids[n.ID] {
			return fmt.Errorf("extract: duplicate node id %d", n.ID)
		}
		ids[n.ID] = true
		g.Nodes = append(g.Nodes, &Node{
			ID: n.ID, Text: n.Text, Type: ioc.Type(n.Type), Aliases: n.Aliases,
		})
	}
	for _, e := range in.Edges {
		if !ids[e.From] || !ids[e.To] {
			return fmt.Errorf("extract: edge %d->%d references unknown node", e.From, e.To)
		}
		if e.Verb == "" {
			return fmt.Errorf("extract: edge %d->%d has no verb", e.From, e.To)
		}
		g.Edges = append(g.Edges, &Edge{From: e.From, To: e.To, Verb: e.Verb, Seq: e.Seq})
	}
	return nil
}
