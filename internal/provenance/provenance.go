// Package provenance builds the system provenance graph used by the fuzzy
// search mode: nodes are system entities, edges are system events, with
// forward and backward adjacency for information-flow traversal.
package provenance

import (
	"threatraptor/internal/audit"
)

// EdgeRef points from an entity to one incident event and the entity on
// the other side.
type EdgeRef struct {
	Event int   // index into the graph's event slice (see Event)
	Other int64 // the other endpoint's entity ID
}

// Graph is the provenance graph over one set of entities and events. It
// holds frozen slice headers rather than the live *audit.Log, so a graph
// built from a published store snapshot (BuildFrom over
// engine.Snapshot.Entities/Events) is immune to concurrent appends and
// needs no session lock.
type Graph struct {
	// entities is the dense entity slice: entity ID i at offset i-1.
	entities []*audit.Entity
	events   []audit.Event
	// Fwd[subject] lists events initiated by the subject; Bwd[object]
	// lists events targeting the object.
	Fwd map[int64][]EdgeRef
	Bwd map[int64][]EdgeRef
}

// Build constructs the provenance graph over a whole audit log (the
// preprocessing phase of Table IX).
func Build(log *audit.Log) *Graph {
	return BuildFrom(log.Entities.Dense(), log.Events)
}

// BuildFrom constructs the provenance graph from a frozen dense entity
// slice (entity ID i at offset i-1) and event slice — typically a
// published engine.Snapshot's captures.
func BuildFrom(entities []*audit.Entity, events []audit.Event) *Graph {
	g := &Graph{
		entities: entities,
		events:   events,
		Fwd:      make(map[int64][]EdgeRef),
		Bwd:      make(map[int64][]EdgeRef),
	}
	for i := range events {
		ev := &events[i]
		g.Fwd[ev.SubjectID] = append(g.Fwd[ev.SubjectID], EdgeRef{Event: i, Other: ev.ObjectID})
		g.Bwd[ev.ObjectID] = append(g.Bwd[ev.ObjectID], EdgeRef{Event: i, Other: ev.SubjectID})
	}
	return g
}

// Event returns the event an EdgeRef points at.
func (g *Graph) Event(i int) *audit.Event { return &g.events[i] }

// Entity resolves an entity ID, or nil when unknown.
func (g *Graph) Entity(id int64) *audit.Entity {
	if id < 1 || id > int64(len(g.entities)) {
		return nil
	}
	return g.entities[id-1]
}

// Entities returns the graph's dense entity slice in ID order.
func (g *Graph) Entities() []*audit.Entity { return g.entities }

// NumNodes and NumEdges report graph sizes.
func (g *Graph) NumNodes() int { return len(g.entities) }
func (g *Graph) NumEdges() int { return len(g.events) }

// AvgDegree returns edges per node, the density metric the paper uses to
// explain the tc_theia bottleneck.
func (g *Graph) AvgDegree() float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(n)
}

// DefaultName returns the default security-analysis attribute of an entity
// (file name / process exename / destination IP).
func (g *Graph) DefaultName(id int64) string {
	e := g.Entity(id)
	if e == nil {
		return ""
	}
	v, _ := e.Attr(audit.DefaultAttr(e.Kind))
	return v
}

// Neighbors lists both incident directions of an entity.
func (g *Graph) Neighbors(id int64) []EdgeRef {
	fwd := g.Fwd[id]
	bwd := g.Bwd[id]
	out := make([]EdgeRef, 0, len(fwd)+len(bwd))
	out = append(out, fwd...)
	out = append(out, bwd...)
	return out
}
