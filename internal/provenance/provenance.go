// Package provenance builds the system provenance graph used by the fuzzy
// search mode: nodes are system entities, edges are system events, with
// forward and backward adjacency for information-flow traversal.
package provenance

import (
	"threatraptor/internal/audit"
)

// EdgeRef points from an entity to one incident event and the entity on
// the other side.
type EdgeRef struct {
	Event int   // index into Log.Events
	Other int64 // the other endpoint's entity ID
}

// Graph is the provenance graph over one audit log.
type Graph struct {
	Log *audit.Log
	// Fwd[subject] lists events initiated by the subject; Bwd[object]
	// lists events targeting the object.
	Fwd map[int64][]EdgeRef
	Bwd map[int64][]EdgeRef
}

// Build constructs the provenance graph (the preprocessing phase of
// Table IX).
func Build(log *audit.Log) *Graph {
	g := &Graph{
		Log: log,
		Fwd: make(map[int64][]EdgeRef),
		Bwd: make(map[int64][]EdgeRef),
	}
	for i := range log.Events {
		ev := &log.Events[i]
		g.Fwd[ev.SubjectID] = append(g.Fwd[ev.SubjectID], EdgeRef{Event: i, Other: ev.ObjectID})
		g.Bwd[ev.ObjectID] = append(g.Bwd[ev.ObjectID], EdgeRef{Event: i, Other: ev.SubjectID})
	}
	return g
}

// NumNodes and NumEdges report graph sizes.
func (g *Graph) NumNodes() int { return g.Log.Entities.Len() }
func (g *Graph) NumEdges() int { return len(g.Log.Events) }

// AvgDegree returns edges per node, the density metric the paper uses to
// explain the tc_theia bottleneck.
func (g *Graph) AvgDegree() float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(n)
}

// DefaultName returns the default security-analysis attribute of an entity
// (file name / process exename / destination IP).
func (g *Graph) DefaultName(id int64) string {
	e := g.Log.Entities.Lookup(id)
	if e == nil {
		return ""
	}
	v, _ := e.Attr(audit.DefaultAttr(e.Kind))
	return v
}

// Neighbors lists both incident directions of an entity.
func (g *Graph) Neighbors(id int64) []EdgeRef {
	fwd := g.Fwd[id]
	bwd := g.Bwd[id]
	out := make([]EdgeRef, 0, len(fwd)+len(bwd))
	out = append(out, fwd...)
	out = append(out, bwd...)
	return out
}
