package provenance

import "sort"

// Causality analysis over the provenance graph: backward tracking finds
// the root causes of a detection point (everything that could have
// influenced an entity), forward tracking finds its ramifications
// (everything the entity could have influenced). This is the classic
// BackTracker-style analysis the paper's related work section builds on
// (King & Chen, SOSP 2003), and it is what an analyst runs on the entities
// a TBQL hunt returns.

// TrackResult is the causal slice reachable from a starting entity.
type TrackResult struct {
	// Entities maps reachable entity IDs to their causal depth (number of
	// events on the shortest causal path from the start).
	Entities map[int64]int
	// Events lists the IDs of the events on the causal paths, in event-ID
	// order.
	Events []int64
}

// BackTrack returns everything that causally precedes entity id: events
// that wrote into the entity (or into its transitive causes) at or before
// their influence time. An event e(u→v) propagates influence from u to v,
// so backward tracking follows events where the frontier entity is the
// object, and for processes also the events they read (a process is
// influenced by what it reads: frontier as subject of read-like events).
//
// maxDepth bounds the traversal (0 means unbounded). Time monotonicity is
// enforced: a cause must start no later than the effect it explains.
func (g *Graph) BackTrack(id int64, maxDepth int) TrackResult {
	return g.track(id, maxDepth, true)
}

// ForwardTrack returns everything entity id could have influenced:
// events it initiated, entities those events wrote, and so on forward in
// time.
func (g *Graph) ForwardTrack(id int64, maxDepth int) TrackResult {
	return g.track(id, maxDepth, false)
}

// influenceDirection reports whether an event propagates data INTO its
// subject (reads, receives) rather than into its object.
func intoSubject(op string) bool {
	switch op {
	case "read", "receive":
		return true
	}
	return false
}

func (g *Graph) track(start int64, maxDepth int, backward bool) TrackResult {
	res := TrackResult{Entities: map[int64]int{start: 0}}
	eventSet := make(map[int64]bool)
	type frontier struct {
		ent   int64
		depth int
		// bound is the time constraint carried along the path: for
		// backward tracking causes must start before it; for forward
		// tracking effects must end after it.
		bound int64
	}
	var init int64
	if backward {
		init = int64(1) << 62
	}
	queue := []frontier{{ent: start, depth: 0, bound: init}}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		if maxDepth > 0 && f.depth >= maxDepth {
			continue
		}
		for _, ref := range g.Neighbors(f.ent) {
			ev := g.Event(ref.Event)
			// Determine the data-flow direction of this event relative to
			// the frontier entity.
			var flowsIn bool // data flows INTO the frontier entity
			if ev.ObjectID == f.ent {
				flowsIn = !intoSubject(ev.Op.String())
			} else {
				flowsIn = intoSubject(ev.Op.String())
			}
			// Backward tracking follows edges that flow INTO the frontier;
			// forward tracking follows edges that flow OUT of it.
			if backward != flowsIn {
				continue
			}
			// Time monotonicity.
			if backward {
				if ev.StartTime > f.bound {
					continue
				}
			} else if ev.EndTime < f.bound {
				continue
			}
			eventSet[ev.ID] = true
			next := ref.Other
			if d, seen := res.Entities[next]; !seen || d > f.depth+1 {
				res.Entities[next] = f.depth + 1
				var bound int64
				if backward {
					bound = ev.StartTime
				} else {
					bound = ev.EndTime
				}
				queue = append(queue, frontier{ent: next, depth: f.depth + 1, bound: bound})
			}
		}
	}
	res.Events = make([]int64, 0, len(eventSet))
	for id := range eventSet {
		res.Events = append(res.Events, id)
	}
	sort.Slice(res.Events, func(a, b int) bool { return res.Events[a] < res.Events[b] })
	return res
}
