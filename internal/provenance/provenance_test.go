package provenance

import (
	"testing"

	"threatraptor/internal/audit"
)

// chainLog builds the canonical exfiltration chain:
//
//	tar reads passwd (t=10..11), tar writes upload (t=20..21),
//	curl reads upload (t=30..31), curl sends to c2 (t=40..41),
//	vim writes notes (t=50..51)  — causally unrelated.
func chainLog(t testing.TB) (*audit.Log, map[string]int64) {
	t.Helper()
	log := audit.NewLog()
	ids := map[string]int64{}
	intern := func(name string, e *audit.Entity) int64 {
		got := log.Entities.Intern(e)
		ids[name] = got.ID
		return got.ID
	}
	tar := intern("tar", audit.NewProcessEntity(1, "/bin/tar", "root", "root", ""))
	passwd := intern("passwd", audit.NewFileEntity("/etc/passwd", "root", "root"))
	upload := intern("upload", audit.NewFileEntity("/tmp/upload.tar", "root", "root"))
	curl := intern("curl", audit.NewProcessEntity(2, "/usr/bin/curl", "root", "root", ""))
	c2 := intern("c2", audit.NewNetConnEntity("10.0.0.1", 4000, "192.168.29.128", 443, "tcp"))
	vim := intern("vim", audit.NewProcessEntity(3, "/usr/bin/vim", "alice", "staff", ""))
	notes := intern("notes", audit.NewFileEntity("/home/alice/notes.txt", "alice", "staff"))

	log.Append(audit.Event{SubjectID: tar, ObjectID: passwd, Op: audit.OpRead, StartTime: 10, EndTime: 11})
	log.Append(audit.Event{SubjectID: tar, ObjectID: upload, Op: audit.OpWrite, StartTime: 20, EndTime: 21})
	log.Append(audit.Event{SubjectID: curl, ObjectID: upload, Op: audit.OpRead, StartTime: 30, EndTime: 31})
	log.Append(audit.Event{SubjectID: curl, ObjectID: c2, Op: audit.OpSend, StartTime: 40, EndTime: 41})
	log.Append(audit.Event{SubjectID: vim, ObjectID: notes, Op: audit.OpWrite, StartTime: 50, EndTime: 51})
	return log, ids
}

func TestBuildAdjacency(t *testing.T) {
	log, ids := chainLog(t)
	g := Build(log)
	if g.NumNodes() != 7 || g.NumEdges() != 5 {
		t.Fatalf("graph = %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	if len(g.Fwd[ids["tar"]]) != 2 {
		t.Errorf("tar initiates 2 events, got %d", len(g.Fwd[ids["tar"]]))
	}
	if len(g.Bwd[ids["upload"]]) != 2 {
		t.Errorf("upload is object of 2 events, got %d", len(g.Bwd[ids["upload"]]))
	}
	if g.AvgDegree() != 5.0/7.0 {
		t.Errorf("avg degree = %v", g.AvgDegree())
	}
	if g.DefaultName(ids["c2"]) != "192.168.29.128" {
		t.Errorf("c2 name = %q", g.DefaultName(ids["c2"]))
	}
	if g.DefaultName(99999) != "" {
		t.Error("unknown entity should have empty name")
	}
}

func TestBackTrackFromC2(t *testing.T) {
	log, ids := chainLog(t)
	g := Build(log)
	res := g.BackTrack(ids["c2"], 0)
	// The full causal chain: c2 <- curl <- upload <- tar <- passwd.
	for _, name := range []string{"curl", "upload", "tar", "passwd"} {
		if _, ok := res.Entities[ids[name]]; !ok {
			t.Errorf("backward slice missing %s: %v", name, res.Entities)
		}
	}
	// The unrelated editor session must not appear.
	for _, name := range []string{"vim", "notes"} {
		if _, ok := res.Entities[ids[name]]; ok {
			t.Errorf("backward slice must not contain %s", name)
		}
	}
	if len(res.Events) != 4 {
		t.Errorf("causal events = %v, want the 4 attack events", res.Events)
	}
	// Depths increase along the chain.
	if res.Entities[ids["curl"]] >= res.Entities[ids["tar"]] {
		t.Errorf("curl (depth %d) should be closer than tar (depth %d)",
			res.Entities[ids["curl"]], res.Entities[ids["tar"]])
	}
}

func TestForwardTrackFromPasswd(t *testing.T) {
	log, ids := chainLog(t)
	g := Build(log)
	res := g.ForwardTrack(ids["passwd"], 0)
	for _, name := range []string{"tar", "upload", "curl", "c2"} {
		if _, ok := res.Entities[ids[name]]; !ok {
			t.Errorf("forward slice missing %s: %v", name, res.Entities)
		}
	}
	if _, ok := res.Entities[ids["notes"]]; ok {
		t.Error("forward slice must not contain the unrelated file")
	}
}

func TestTrackDepthBound(t *testing.T) {
	log, ids := chainLog(t)
	g := Build(log)
	res := g.BackTrack(ids["c2"], 2)
	if _, ok := res.Entities[ids["upload"]]; !ok {
		t.Error("depth 2 should reach the staged file")
	}
	if _, ok := res.Entities[ids["passwd"]]; ok {
		t.Error("depth 2 must not reach the root cause at depth 4")
	}
}

func TestTrackTimeMonotonicity(t *testing.T) {
	// A write that happens AFTER the read cannot be its cause.
	log := audit.NewLog()
	p1 := log.Entities.Intern(audit.NewProcessEntity(1, "/bin/a", "", "", ""))
	p2 := log.Entities.Intern(audit.NewProcessEntity(2, "/bin/b", "", "", ""))
	f := log.Entities.Intern(audit.NewFileEntity("/tmp/x", "", ""))
	// p2 reads f at t=10; p1 writes f at t=100 (later!).
	log.Append(audit.Event{SubjectID: p2.ID, ObjectID: f.ID, Op: audit.OpRead, StartTime: 10, EndTime: 11})
	log.Append(audit.Event{SubjectID: p1.ID, ObjectID: f.ID, Op: audit.OpWrite, StartTime: 100, EndTime: 101})
	g := Build(log)
	res := g.BackTrack(p2.ID, 0)
	if _, ok := res.Entities[p1.ID]; ok {
		t.Errorf("future write must not backward-explain a past read: %v", res.Entities)
	}
	// Forward from p1: the write at t=100 cannot influence the read at t=10.
	res = g.ForwardTrack(p1.ID, 0)
	if _, ok := res.Entities[p2.ID]; ok {
		t.Errorf("forward influence must respect time: %v", res.Entities)
	}
}

func TestTrackSelfOnly(t *testing.T) {
	log := audit.NewLog()
	p := log.Entities.Intern(audit.NewProcessEntity(1, "/bin/a", "", "", ""))
	g := Build(log)
	res := g.BackTrack(p.ID, 0)
	if len(res.Entities) != 1 || len(res.Events) != 0 {
		t.Fatalf("isolated entity slice = %+v", res)
	}
}
