// Package threatraptor is a from-scratch Go implementation of
// ThreatRaptor (Gao et al., "Enabling Efficient Cyber Threat Hunting With
// Cyber Threat Intelligence", ICDE 2021): a system that facilitates threat
// hunting in computer systems using open-source Cyber Threat Intelligence
// (OSCTI).
//
// The System type is the façade over the full pipeline:
//
//	sys := threatraptor.New()
//	sys.LoadAuditLog(logFile)              // system audit logging data
//	res := sys.ExtractBehaviorGraph(text)  // OSCTI text -> threat behavior graph
//	query, _ := sys.SynthesizeQuery(res.Graph)
//	hits, _, _ := sys.Hunt(ctx, query)     // TBQL execution
//
// Every stage is also usable on its own through the internal packages:
// audit (system auditing), reduction (data reduction), nlp (the NLP
// substrate), ioc (IOC recognition and protection), extract (threat
// behavior extraction), tbql (the query language), synth (query
// synthesis), engine (storage and scheduled execution), provenance and
// fuzzy (the Poirot-style fuzzy search mode).
package threatraptor

import (
	"context"
	"fmt"
	"io"
	"time"

	"threatraptor/internal/audit"
	"threatraptor/internal/engine"
	"threatraptor/internal/extract"
	"threatraptor/internal/fuzzy"
	"threatraptor/internal/provenance"
	"threatraptor/internal/reduction"
	"threatraptor/internal/rules"
	"threatraptor/internal/segment"
	"threatraptor/internal/shard"
	"threatraptor/internal/stream"
	"threatraptor/internal/synth"
	"threatraptor/internal/tactical"
	"threatraptor/internal/tbql"
)

// Options configures a System.
type Options struct {
	// IOCProtection toggles the extraction pipeline's IOC protection
	// (default on; disabling reproduces the paper's ablation).
	IOCProtection bool
	// ReductionThresholdUS is the data reduction merge threshold in µs
	// (default 1 second, the paper's choice).
	ReductionThresholdUS int64
	// StreamLatenessUS bounds how late an event may arrive on the live
	// ingest path and still merge (watermark lag). Values below the
	// reduction threshold are raised to it; zero means "threshold".
	StreamLatenessUS int64
	// SynthesisMode selects the synthesized pattern syntax.
	SynthesisMode synth.Mode
	// MaxConcurrentHunts caps how many hunts (Hunt, FuzzyHunt, HuntOSCTI)
	// run at once; later arrivals queue up to HuntQueueTimeout and are
	// then shed with an error wrapping engine.ErrOverloaded. Zero or
	// negative: unlimited (the default).
	MaxConcurrentHunts int
	// HuntQueueTimeout is how long a hunt waits for a slot when
	// MaxConcurrentHunts is reached (zero: reject immediately when full).
	HuntQueueTimeout time.Duration
	// Shards partitions the store into N host/time/hash partitions with
	// scatter-gather hunt execution (see internal/shard): pattern data
	// queries route only to the partitions their window, operation, and
	// host predicates can touch and run concurrently against per-shard
	// snapshots, while the global store stays authoritative for
	// variable-length paths, fuzzy search, and the tactical layer.
	// 0 or 1 keeps the classic single store.
	Shards int
	// PartitionBy selects the sharding key: "hash" (event ID, the
	// default), "host" (subject entity's host), or "time"/"time:<dur>"
	// (start-time slices). Ignored unless Shards > 1.
	PartitionBy string
	// Rules is the compiled detection rule set for the tactical layer.
	// When set, the live session tags rule-matching events per sealed
	// batch and maintains ranked incidents (Incidents, WatchIncidents).
	// Nil disables the tactical layer.
	Rules *rules.Set
	// OnTacticalRound, when set, observes every tactical round (duration
	// and round stats). It is called from the ingestion path — keep it
	// cheap (metrics recording).
	OnTacticalRound func(time.Duration, tactical.RoundStats)
	// DataDir enables the durable crash-safe store: the live session
	// write-ahead-logs every sealed batch into this directory and
	// periodically flushes checksummed columnar segment files, and Live()
	// recovers whatever a previous session persisted there (segments +
	// WAL replay). Empty keeps the classic in-memory store.
	DataDir string
	// FsyncPolicy is the WAL fsync policy: "always" (default), "batch"
	// (only at segment-flush boundaries), or "off".
	FsyncPolicy string
	// SegmentEvery flushes a segment generation every N sealed batches
	// (default 64). Clean Close always flushes.
	SegmentEvery int
	// RecoverCorrupt opts into degraded recovery: mid-file WAL corruption
	// truncates to the last consistent prefix instead of refusing startup.
	RecoverCorrupt bool
	// OnWALFsync, when set, observes every WAL fsync duration.
	OnWALFsync func(time.Duration)
	// OnSegmentFlush, when set, observes every segment flush attempt.
	OnSegmentFlush func(stream.FlushStats)
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{
		IOCProtection:        true,
		ReductionThresholdUS: 1_000_000,
		SynthesisMode:        synth.ModeEventPatterns,
	}
}

// System bundles the threat behavior extraction pipeline and the query
// subsystem over one audit log store.
type System struct {
	opts      Options
	extractor *extract.Extractor
	store     *engine.Store
	engine    *engine.Engine
	// shards is the sharded store coordinator (nil unless Options.Shards
	// > 1); when set, store/engine alias its global store, so snapshot
	// readers (fuzzy, tactical, explain) are unchanged.
	shards *shard.Store
	// live is the streaming ingestion session, created lazily by the
	// first Ingest or Watch call. No read path locks against it: hunts,
	// fuzzy search, explain, and incident listing all pin the engine's
	// published store snapshot (or the analyzer's own state).
	live *stream.Session
	// adm is the concurrent-hunt admission semaphore (nil: unlimited).
	adm *engine.Admission
	// recovery holds what the durable open found (zero value without
	// Options.DataDir or before Live).
	recovery stream.RecoveryStats
}

// New creates a System with the given options.
func New(opts Options) *System {
	return &System{
		opts: opts,
		extractor: extract.New(extract.Options{
			IOCProtection: opts.IOCProtection,
		}),
		adm: engine.NewAdmission(opts.MaxConcurrentHunts, opts.HuntQueueTimeout),
	}
}

// LoadAuditLog parses newline-delimited raw audit records from r, applies
// data reduction, and loads the result into the relational and graph
// storage backends.
func (s *System) LoadAuditLog(r io.Reader) error {
	log, err := audit.ParseStream(r)
	if err != nil {
		return err
	}
	return s.LoadLog(log)
}

// LoadLog applies data reduction to an already-parsed log and loads it
// into the storage backends. It cannot replace the store while a live
// ingestion session is active (close or flush the stream first).
func (s *System) LoadLog(log *audit.Log) error {
	if s.live != nil {
		return fmt.Errorf("threatraptor: live ingestion active; the stream owns the store")
	}
	reduction.Reduce(log, reduction.Config{ThresholdUS: s.opts.ReductionThresholdUS})
	return s.buildStore(log)
}

// buildStore constructs the storage layer over an already-reduced log:
// the classic single store, or (Options.Shards > 1) the sharded
// coordinator whose global store the façade's snapshot readers alias.
func (s *System) buildStore(log *audit.Log) error {
	if s.opts.Shards > 1 {
		part, err := shard.ParsePartitioner(s.opts.PartitionBy)
		if err != nil {
			return err
		}
		sh, err := shard.New(log, s.opts.Shards, part)
		if err != nil {
			return err
		}
		s.shards = sh
		s.store = sh.Global()
		s.engine = &engine.Engine{Store: s.store}
		return nil
	}
	store, err := engine.NewStore(log)
	if err != nil {
		return err
	}
	s.store = store
	s.engine = &engine.Engine{Store: store}
	return nil
}

// ShardStore exposes the sharded store coordinator (nil unless
// Options.Shards > 1): per-shard metrics, fan-out histogram.
func (s *System) ShardStore() *shard.Store { return s.shards }

// Live returns the streaming ingestion session, creating it on first use.
// If an audit log was already loaded, the stream appends to that store;
// otherwise it starts from an empty one. Advanced callers use the session
// directly (Unwatch, Close, IngestRecords); Ingest/Watch/FlushStream
// below cover the common path.
func (s *System) Live() (*stream.Session, error) {
	if s.live != nil {
		return s.live, nil
	}
	cfg := stream.Config{
		ReductionThresholdUS: s.opts.ReductionThresholdUS,
		LatenessUS:           s.opts.StreamLatenessUS,
		Tactical:             tactical.Config{Rules: s.opts.Rules},
		OnTacticalRound:      s.opts.OnTacticalRound,
	}
	if s.opts.DataDir != "" {
		return s.openDurable(cfg)
	}
	if s.store == nil {
		if err := s.buildStore(audit.NewLog()); err != nil {
			return nil, err
		}
	}
	if s.shards != nil {
		s.live = stream.NewWithBackend(s.shards, cfg)
	} else {
		s.live = stream.New(s.store, s.engine, cfg)
	}
	return s.live, nil
}

// openDurable opens the crash-safe live session over Options.DataDir:
// persisted state is recovered (segment restore + WAL replay) when the
// directory holds a committed manifest, otherwise the session starts
// over the current (possibly preloaded) store and persists from here on.
func (s *System) openDurable(cfg stream.Config) (*stream.Session, error) {
	cfg.Durability = stream.Durability{
		Dir:            s.opts.DataDir,
		Fsync:          s.opts.FsyncPolicy,
		SegmentEvery:   s.opts.SegmentEvery,
		RecoverCorrupt: s.opts.RecoverCorrupt,
		OnWALFsync:     s.opts.OnWALFsync,
		OnSegmentFlush: s.opts.OnSegmentFlush,
	}
	if s.store != nil && segment.Exists(s.opts.DataDir) {
		return nil, fmt.Errorf("threatraptor: data dir %s holds persisted state but a log is already loaded; skip preloading to recover it, or point DataDir at a fresh directory", s.opts.DataDir)
	}
	fresh := func() (stream.DurableBackend, error) {
		if s.store == nil {
			if err := s.buildStore(audit.NewLog()); err != nil {
				return nil, err
			}
		}
		if s.shards != nil {
			return s.shards, nil
		}
		return stream.NewBackend(s.store, s.engine), nil
	}
	fromImages := func(imgs []segment.RoleImage, topo segment.Topology) (stream.DurableBackend, error) {
		wantShards := 0
		wantPart := ""
		if s.opts.Shards > 1 {
			p, err := shard.ParsePartitioner(s.opts.PartitionBy)
			if err != nil {
				return nil, err
			}
			wantShards, wantPart = s.opts.Shards, p.Name()
		}
		if topo.Shards != wantShards || topo.PartitionBy != wantPart {
			return nil, fmt.Errorf(
				"threatraptor: data dir %s was persisted with %d shards (partitioner %q) but the configuration wants %d (%q); reshard by rebuilding from the source log, or match the persisted topology",
				s.opts.DataDir, topo.Shards, topo.PartitionBy, wantShards, wantPart)
		}
		if topo.Shards > 0 {
			part, err := shard.ParsePartitioner(topo.PartitionBy)
			if err != nil {
				return nil, err
			}
			sh, err := shard.OpenImages(imgs, topo.Shards, part)
			if err != nil {
				return nil, err
			}
			s.shards = sh
			s.store = sh.Global()
			s.engine = &engine.Engine{Store: s.store}
			return sh, nil
		}
		var gimg *segment.Image
		for _, ri := range imgs {
			if ri.Role == segment.RoleGlobal {
				gimg = ri.Image
			}
		}
		if gimg == nil {
			return nil, fmt.Errorf("threatraptor: data dir %s has no %q segment", s.opts.DataDir, segment.RoleGlobal)
		}
		st, err := engine.OpenStore(gimg, gimg.EntityCols, gimg.Entities, audit.RestoreTable(gimg.Entities))
		if err != nil {
			return nil, err
		}
		s.store = st
		s.engine = &engine.Engine{Store: st}
		return stream.NewBackend(st, s.engine), nil
	}
	live, rs, err := stream.OpenDurable(cfg, fresh, fromImages)
	if err != nil {
		return nil, err
	}
	s.live = live
	s.recovery = rs
	return live, nil
}

// RecoveryStats reports what the durable open recovered: zero value
// without Options.DataDir or before the live session exists.
func (s *System) RecoveryStats() stream.RecoveryStats { return s.recovery }

// Close shuts down the live session if one exists: buffered input is
// flushed, standing subscriptions terminate, and a durable session
// writes its final segment generation and closes the WAL. The store
// remains queryable. A System without a live session closes as a no-op.
func (s *System) Close() error {
	if s.live == nil {
		return nil
	}
	return s.live.Close()
}

// Ingest reads every currently available raw audit record from r into the
// live stream: complete lines are parsed (a trailing partial line is
// buffered for the next call), the watermark advances, newly sealed
// batches are appended to the store in place, and standing queries fire.
// Typical use tails a growing log file by calling Ingest on the same
// *os.File whenever it grows.
func (s *System) Ingest(r io.Reader) (stream.IngestStats, error) {
	live, err := s.Live()
	if err != nil {
		return stream.IngestStats{}, err
	}
	return live.Ingest(r)
}

// Watch registers a standing TBQL query against the live stream: every
// sealed batch is evaluated incrementally and previously unseen complete
// bindings are delivered on the returned subscription's channel. Watch
// covers the future; use Hunt for history.
func (s *System) Watch(tbqlSrc string) (*stream.Subscription, error) {
	live, err := s.Live()
	if err != nil {
		return nil, err
	}
	return live.Watch(tbqlSrc)
}

// FlushStream force-seals everything buffered on the live stream (partial
// line, arrival buffer, pending merges) so the store reflects every byte
// ingested — the end-of-stream barrier after which a Hunt sees exactly
// what a batch load would have seen.
func (s *System) FlushStream() (stream.IngestStats, error) {
	if s.live == nil {
		return stream.IngestStats{}, nil
	}
	return s.live.Flush()
}

// Store exposes the loaded storage backends (nil before LoadLog).
func (s *System) Store() *engine.Store { return s.store }

// HuntsInFlight reports how many admitted hunts are currently running
// (always 0 when Options.MaxConcurrentHunts is unlimited — without a cap
// there is no admission semaphore to count against).
func (s *System) HuntsInFlight() int { return s.adm.InFlight() }

// ExtractBehaviorGraph runs the threat behavior extraction pipeline over
// OSCTI text, returning the recognized IOCs, the extracted relation
// triplets, and the constructed threat behavior graph.
func (s *System) ExtractBehaviorGraph(osctiText string) *extract.Result {
	return s.extractor.Extract(osctiText)
}

// SynthesizeQuery synthesizes a TBQL query (as text, ready for analyst
// revision) from a threat behavior graph.
func (s *System) SynthesizeQuery(g *extract.Graph) (string, error) {
	q, _, err := synth.Synthesize(g, synth.Options{Mode: s.opts.SynthesisMode})
	if err != nil {
		return "", err
	}
	return tbql.Format(q), nil
}

// Hunt parses and executes a TBQL query against the loaded store using
// the scheduled (exact search) execution plan. The hunt pins the store's
// latest published snapshot and takes no lock, so it runs concurrently
// with live ingestion and with other hunts. The context cancels the hunt
// cooperatively (nil: no cancellation); when Options caps concurrent
// hunts, the call may shed load with an error wrapping
// engine.ErrOverloaded.
func (s *System) Hunt(ctx context.Context, tbqlSrc string) (*engine.Result, engine.Stats, error) {
	if s.engine == nil {
		return nil, engine.Stats{}, fmt.Errorf("threatraptor: no audit log loaded")
	}
	release, err := s.adm.Acquire(ctx)
	if err != nil {
		return nil, engine.Stats{}, err
	}
	defer release()
	if s.live != nil {
		return s.live.Hunt(ctx, tbqlSrc)
	}
	if s.shards != nil {
		return s.shards.Hunt(ctx, tbqlSrc)
	}
	return s.engine.Hunt(ctx, tbqlSrc)
}

// Explain compiles a TBQL query without executing it and renders the
// compilation report: per-pattern logical-plan IR, chosen physical plans,
// and the equivalent SQL/Cypher texts (the EXPLAIN/debug path).
func (s *System) Explain(tbqlSrc string) (string, error) {
	if s.engine == nil {
		return "", fmt.Errorf("threatraptor: no audit log loaded")
	}
	q, err := tbql.Parse(tbqlSrc)
	if err != nil {
		return "", err
	}
	a, err := tbql.Analyze(q)
	if err != nil {
		return "", err
	}
	return s.engine.Explain(a)
}

// HuntOSCTI runs the whole pipeline end to end: extract the threat
// behavior graph from the report, synthesize a TBQL query, and execute it.
// It returns the synthesized query text alongside the results.
func (s *System) HuntOSCTI(ctx context.Context, osctiText string) (string, *engine.Result, error) {
	res := s.ExtractBehaviorGraph(osctiText)
	query, err := s.SynthesizeQuery(res.Graph)
	if err != nil {
		return "", nil, err
	}
	hits, _, err := s.Hunt(ctx, query)
	return query, hits, err
}

// FuzzyAlignment is one accepted fuzzy-search alignment, reported with
// entity names.
type FuzzyAlignment struct {
	Score    float64
	Entities map[string]string // query entity ID -> aligned attribute value
	Events   []int64           // covered audit event IDs
}

// FuzzyHunt executes a TBQL query in the fuzzy search mode (inexact graph
// pattern matching, extending Poirot): node-level alignment tolerates IOC
// typos and changes, and flow paths substitute for missing direct events.
// The search builds its provenance graph from the store's latest published
// snapshot, so it takes no lock and runs concurrently with live ingestion.
// The hunt counts against Options.MaxConcurrentHunts; the context bounds
// the admission wait.
func (s *System) FuzzyHunt(ctx context.Context, tbqlSrc string, exhaustive bool) ([]FuzzyAlignment, error) {
	release, err := s.adm.Acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	return s.fuzzyHunt(tbqlSrc, exhaustive)
}

func (s *System) fuzzyHunt(tbqlSrc string, exhaustive bool) ([]FuzzyAlignment, error) {
	if s.store == nil {
		return nil, fmt.Errorf("threatraptor: no audit log loaded")
	}
	q, err := tbql.Parse(tbqlSrc)
	if err != nil {
		return nil, err
	}
	a, err := tbql.Analyze(q)
	if err != nil {
		return nil, err
	}
	qg, err := fuzzy.FromTBQL(a)
	if err != nil {
		return nil, err
	}
	mode := fuzzy.ModeFirstAcceptable
	if exhaustive {
		mode = fuzzy.ModeExhaustive
	}
	snap := s.store.Snapshot()
	prov := provenance.BuildFrom(snap.Entities, snap.Events)
	searcher := fuzzy.NewSearcher(prov, qg, fuzzy.DefaultOptions(mode))
	var out []FuzzyAlignment
	for _, al := range searcher.Search() {
		fa := FuzzyAlignment{
			Score:    al.Score,
			Entities: make(map[string]string, len(qg.Nodes)),
			Events:   al.Events,
		}
		for i, qn := range qg.Nodes {
			if al.NodeMap[i] != 0 {
				fa.Entities[qn.ID] = prov.DefaultName(al.NodeMap[i])
			}
		}
		out = append(out, fa)
	}
	return out, nil
}

// Incidents returns the tactical layer's ranked incident list (empty
// without Options.Rules or before any live ingestion). It takes no lock
// against ingestion.
func (s *System) Incidents() ([]tactical.Incident, error) {
	if s.opts.Rules == nil {
		return nil, stream.ErrTacticalDisabled
	}
	live, err := s.Live()
	if err != nil {
		return nil, err
	}
	return live.Incidents(), nil
}

// WatchIncidents subscribes to per-round incident updates from the live
// tactical layer. buf is the channel capacity (<=0: session default).
func (s *System) WatchIncidents(buf int) (*stream.IncidentSub, error) {
	if s.opts.Rules == nil {
		return nil, stream.ErrTacticalDisabled
	}
	live, err := s.Live()
	if err != nil {
		return nil, err
	}
	return live.WatchIncidents(buf)
}

// TacticalStats reports the tactical layer's lifetime totals (zeros when
// the layer is disabled or the live session was never created).
func (s *System) TacticalStats() tactical.Stats {
	if s.live == nil {
		return tactical.Stats{}
	}
	return s.live.TacticalStats()
}

// Analyze runs the tactical pipeline one-shot over the loaded store:
// every stored event is tagged against the rule set and the resulting
// incidents are ranked. It is the batch counterpart of the live layer
// (same analyzer, one round over the whole snapshot).
func (s *System) Analyze(set *rules.Set) ([]tactical.Incident, error) {
	if s.store == nil {
		return nil, fmt.Errorf("threatraptor: no audit log loaded")
	}
	return tactical.Analyze(s.store.Snapshot(), tactical.Config{Rules: set}), nil
}
