// Package threatraptor is a from-scratch Go implementation of
// ThreatRaptor (Gao et al., "Enabling Efficient Cyber Threat Hunting With
// Cyber Threat Intelligence", ICDE 2021): a system that facilitates threat
// hunting in computer systems using open-source Cyber Threat Intelligence
// (OSCTI).
//
// The System type is the façade over the full pipeline:
//
//	sys := threatraptor.New()
//	sys.LoadAuditLog(logFile)              // system audit logging data
//	res := sys.ExtractBehaviorGraph(text)  // OSCTI text -> threat behavior graph
//	query, _ := sys.SynthesizeQuery(res.Graph)
//	hits, _, _ := sys.Hunt(query)          // TBQL execution
//
// Every stage is also usable on its own through the internal packages:
// audit (system auditing), reduction (data reduction), nlp (the NLP
// substrate), ioc (IOC recognition and protection), extract (threat
// behavior extraction), tbql (the query language), synth (query
// synthesis), engine (storage and scheduled execution), provenance and
// fuzzy (the Poirot-style fuzzy search mode).
package threatraptor

import (
	"fmt"
	"io"

	"threatraptor/internal/audit"
	"threatraptor/internal/engine"
	"threatraptor/internal/extract"
	"threatraptor/internal/fuzzy"
	"threatraptor/internal/provenance"
	"threatraptor/internal/reduction"
	"threatraptor/internal/synth"
	"threatraptor/internal/tbql"
)

// Options configures a System.
type Options struct {
	// IOCProtection toggles the extraction pipeline's IOC protection
	// (default on; disabling reproduces the paper's ablation).
	IOCProtection bool
	// ReductionThresholdUS is the data reduction merge threshold in µs
	// (default 1 second, the paper's choice).
	ReductionThresholdUS int64
	// SynthesisMode selects the synthesized pattern syntax.
	SynthesisMode synth.Mode
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{
		IOCProtection:        true,
		ReductionThresholdUS: 1_000_000,
		SynthesisMode:        synth.ModeEventPatterns,
	}
}

// System bundles the threat behavior extraction pipeline and the query
// subsystem over one audit log store.
type System struct {
	opts      Options
	extractor *extract.Extractor
	store     *engine.Store
	engine    *engine.Engine
}

// New creates a System with the given options.
func New(opts Options) *System {
	return &System{
		opts: opts,
		extractor: extract.New(extract.Options{
			IOCProtection: opts.IOCProtection,
		}),
	}
}

// LoadAuditLog parses newline-delimited raw audit records from r, applies
// data reduction, and loads the result into the relational and graph
// storage backends.
func (s *System) LoadAuditLog(r io.Reader) error {
	log, err := audit.ParseStream(r)
	if err != nil {
		return err
	}
	return s.LoadLog(log)
}

// LoadLog applies data reduction to an already-parsed log and loads it
// into the storage backends.
func (s *System) LoadLog(log *audit.Log) error {
	reduction.Reduce(log, reduction.Config{ThresholdUS: s.opts.ReductionThresholdUS})
	store, err := engine.NewStore(log)
	if err != nil {
		return err
	}
	s.store = store
	s.engine = &engine.Engine{Store: store}
	return nil
}

// Store exposes the loaded storage backends (nil before LoadLog).
func (s *System) Store() *engine.Store { return s.store }

// ExtractBehaviorGraph runs the threat behavior extraction pipeline over
// OSCTI text, returning the recognized IOCs, the extracted relation
// triplets, and the constructed threat behavior graph.
func (s *System) ExtractBehaviorGraph(osctiText string) *extract.Result {
	return s.extractor.Extract(osctiText)
}

// SynthesizeQuery synthesizes a TBQL query (as text, ready for analyst
// revision) from a threat behavior graph.
func (s *System) SynthesizeQuery(g *extract.Graph) (string, error) {
	q, _, err := synth.Synthesize(g, synth.Options{Mode: s.opts.SynthesisMode})
	if err != nil {
		return "", err
	}
	return tbql.Format(q), nil
}

// Hunt parses and executes a TBQL query against the loaded store using
// the scheduled (exact search) execution plan.
func (s *System) Hunt(tbqlSrc string) (*engine.Result, engine.Stats, error) {
	if s.engine == nil {
		return nil, engine.Stats{}, fmt.Errorf("threatraptor: no audit log loaded")
	}
	return s.engine.Hunt(tbqlSrc)
}

// HuntOSCTI runs the whole pipeline end to end: extract the threat
// behavior graph from the report, synthesize a TBQL query, and execute it.
// It returns the synthesized query text alongside the results.
func (s *System) HuntOSCTI(osctiText string) (string, *engine.Result, error) {
	res := s.ExtractBehaviorGraph(osctiText)
	query, err := s.SynthesizeQuery(res.Graph)
	if err != nil {
		return "", nil, err
	}
	hits, _, err := s.Hunt(query)
	return query, hits, err
}

// FuzzyAlignment is one accepted fuzzy-search alignment, reported with
// entity names.
type FuzzyAlignment struct {
	Score    float64
	Entities map[string]string // query entity ID -> aligned attribute value
	Events   []int64           // covered audit event IDs
}

// FuzzyHunt executes a TBQL query in the fuzzy search mode (inexact graph
// pattern matching, extending Poirot): node-level alignment tolerates IOC
// typos and changes, and flow paths substitute for missing direct events.
func (s *System) FuzzyHunt(tbqlSrc string, exhaustive bool) ([]FuzzyAlignment, error) {
	if s.store == nil {
		return nil, fmt.Errorf("threatraptor: no audit log loaded")
	}
	q, err := tbql.Parse(tbqlSrc)
	if err != nil {
		return nil, err
	}
	a, err := tbql.Analyze(q)
	if err != nil {
		return nil, err
	}
	qg, err := fuzzy.FromTBQL(a)
	if err != nil {
		return nil, err
	}
	mode := fuzzy.ModeFirstAcceptable
	if exhaustive {
		mode = fuzzy.ModeExhaustive
	}
	prov := provenance.Build(s.store.Log)
	searcher := fuzzy.NewSearcher(prov, qg, fuzzy.DefaultOptions(mode))
	var out []FuzzyAlignment
	for _, al := range searcher.Search() {
		fa := FuzzyAlignment{
			Score:    al.Score,
			Entities: make(map[string]string, len(qg.Nodes)),
			Events:   al.Events,
		}
		for i, qn := range qg.Nodes {
			if al.NodeMap[i] != 0 {
				fa.Entities[qn.ID] = prov.DefaultName(al.NodeMap[i])
			}
		}
		out = append(out, fa)
	}
	return out, nil
}
